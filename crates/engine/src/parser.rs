//! A small SQL-ish parser for SPJ queries.
//!
//! The library's canonical query form is programmatic
//! (`SpjQuery::from_predicates`), but a textual form makes examples, tests,
//! and interactive exploration far more pleasant:
//!
//! ```
//! use sqe_engine::{parse_query, Database, table::TableBuilder};
//! let mut db = Database::new();
//! db.add_table(TableBuilder::new("orders")
//!     .column("id", vec![1, 2]).column("price", vec![10, 20])
//!     .build().unwrap());
//! db.add_table(TableBuilder::new("lineitem")
//!     .column("order_fk", vec![1, 1, 2]).build().unwrap());
//!
//! let q = parse_query(
//!     &db,
//!     "select * from orders, lineitem \
//!      where lineitem.order_fk = orders.id and orders.price > 15",
//! ).unwrap();
//! assert_eq!(q.join_count(), 1);
//! assert_eq!(q.filter_count(), 1);
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query  := SELECT '*' FROM table (',' table)* [WHERE conj]
//! conj   := pred (AND pred)*
//! pred   := col op const | const op col | col '=' col
//!         | col BETWEEN const AND const
//! col    := ident '.' ident
//! op     := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! ```
//!
//! Projections are accepted only as `*` (the estimation problem ignores
//! them); string literals, OR, and nesting are intentionally out of scope.

use crate::database::Database;
use crate::error::EngineError;
use crate::predicate::{CmpOp, ColRef, Predicate};
use crate::query::SpjQuery;
use crate::schema::TableId;

/// Parse failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an SPJ query against a database's catalog.
pub fn parse_query(db: &Database, sql: &str) -> std::result::Result<SpjQuery, ParseError> {
    Parser::new(db, sql).parse()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(i64),
    Symbol(String),
    Star,
    Comma,
}

struct Parser<'a> {
    db: &'a Database,
    tokens: Vec<Token>,
    pos: usize,
}

fn err<T>(message: impl Into<String>) -> std::result::Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

impl<'a> Parser<'a> {
    fn new(db: &'a Database, sql: &str) -> Self {
        Parser {
            db,
            tokens: tokenize(sql),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> std::result::Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(w)) if w.eq_ignore_ascii_case(kw) => Ok(()),
            other => err(format!("expected `{kw}`, found {other:?}")),
        }
    }

    fn parse(&mut self) -> std::result::Result<SpjQuery, ParseError> {
        self.expect_keyword("select")?;
        match self.next() {
            Some(Token::Star) => {}
            other => return err(format!("only `select *` is supported, found {other:?}")),
        }
        self.expect_keyword("from")?;

        // Table list.
        let mut tables: Vec<TableId> = Vec::new();
        loop {
            match self.next() {
                Some(Token::Ident(name)) => {
                    let id = self
                        .db
                        .catalog()
                        .table_id(&name)
                        .ok_or_else(|| ParseError {
                            message: format!("unknown table `{name}`"),
                        })?;
                    tables.push(id);
                }
                other => return err(format!("expected table name, found {other:?}")),
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        // Optional WHERE conjunction.
        let mut predicates = Vec::new();
        if let Some(Token::Ident(w)) = self.peek() {
            if w.eq_ignore_ascii_case("where") {
                self.pos += 1;
                loop {
                    predicates.push(self.parse_predicate()?);
                    match self.peek() {
                        Some(Token::Ident(w)) if w.eq_ignore_ascii_case("and") => {
                            self.pos += 1;
                        }
                        None => break,
                        other => {
                            return err(format!("expected `and` or end of query, found {other:?}"))
                        }
                    }
                }
            }
        }
        if let Some(t) = self.peek() {
            return err(format!("unexpected trailing token {t:?}"));
        }

        SpjQuery::new(tables, predicates).map_err(|e: EngineError| ParseError {
            message: e.to_string(),
        })
    }

    fn parse_predicate(&mut self) -> std::result::Result<Predicate, ParseError> {
        // Left operand: column or number.
        enum Side {
            Col(ColRef),
            Num(i64),
        }
        let operand = |p: &mut Self| -> std::result::Result<Side, ParseError> {
            match p.next() {
                Some(Token::Number(n)) => Ok(Side::Num(n)),
                Some(Token::Ident(table)) => {
                    match p.next() {
                        Some(Token::Symbol(dot)) if dot == "." => {}
                        other => {
                            return err(format!("expected `.` after `{table}`, found {other:?}"))
                        }
                    }
                    let column = match p.next() {
                        Some(Token::Ident(c)) => c,
                        other => return err(format!("expected column name, found {other:?}")),
                    };
                    p.resolve(&table, &column).map(Side::Col)
                }
                other => err(format!("expected column or constant, found {other:?}")),
            }
        };

        let lhs = operand(self)?;

        // BETWEEN form (column only).
        if let Side::Col(col) = &lhs {
            if let Some(Token::Ident(w)) = self.peek() {
                if w.eq_ignore_ascii_case("between") {
                    self.pos += 1;
                    let lo = self.expect_number()?;
                    self.expect_keyword("and")?;
                    let hi = self.expect_number()?;
                    if lo > hi {
                        return err(format!("between bounds inverted: {lo} > {hi}"));
                    }
                    return Ok(Predicate::range(*col, lo, hi));
                }
            }
        }

        let op = match self.next() {
            Some(Token::Symbol(s)) => s,
            other => return err(format!("expected comparison operator, found {other:?}")),
        };
        let rhs = operand(self)?;

        let cmp = |s: &str| -> std::result::Result<CmpOp, ParseError> {
            Ok(match s {
                "=" => CmpOp::Eq,
                "<>" | "!=" => CmpOp::Neq,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return err(format!("unknown operator `{s}`"))?,
            })
        };
        let flip = |c: CmpOp| match c {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        };

        match (lhs, rhs) {
            (Side::Col(l), Side::Col(r)) => {
                if op == "=" {
                    Ok(Predicate::join(l, r))
                } else {
                    err("column-to-column predicates must be equi-joins (`=`)")
                }
            }
            (Side::Col(c), Side::Num(n)) => Ok(Predicate::filter(c, cmp(&op)?, n)),
            (Side::Num(n), Side::Col(c)) => Ok(Predicate::filter(c, flip(cmp(&op)?), n)),
            (Side::Num(_), Side::Num(_)) => err("constant-to-constant predicates are pointless"),
        }
    }

    fn expect_number(&mut self) -> std::result::Result<i64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    fn resolve(&self, table: &str, column: &str) -> std::result::Result<ColRef, ParseError> {
        let id = self
            .db
            .catalog()
            .table_id(table)
            .ok_or_else(|| ParseError {
                message: format!("unknown table `{table}`"),
            })?;
        let col = self
            .db
            .catalog()
            .schema(id)
            .and_then(|s| s.column_index(column))
            .ok_or_else(|| ParseError {
                message: format!("unknown column `{table}.{column}`"),
            })?;
        Ok(ColRef::new(id, col))
    }
}

fn tokenize(sql: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(".".into()));
                i += 1;
            }
            '<' | '>' | '=' | '!' => {
                let mut sym = String::from(c);
                if i + 1 < chars.len() && matches!(chars[i + 1], '=' | '>') {
                    sym.push(chars[i + 1]);
                    i += 1;
                }
                out.push(Token::Symbol(sym));
                i += 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                match text.parse() {
                    Ok(n) => out.push(Token::Number(n)),
                    Err(_) => out.push(Token::Symbol(text)),
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                out.push(Token::Symbol(other.to_string()));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("orders")
                .column("id", vec![1, 2, 3])
                .column("price", vec![10, 20, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("lineitem")
                .column("order_fk", vec![1, 1, 2])
                .column("qty", vec![5, 6, 7])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn parses_joins_filters_and_between() {
        let db = db();
        let q = parse_query(
            &db,
            "SELECT * FROM orders, lineitem \
             WHERE lineitem.order_fk = orders.id \
             AND orders.price >= 15 \
             AND lineitem.qty BETWEEN 5 AND 6",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.filter_count(), 2);
        assert!(q
            .predicates
            .contains(&Predicate::range(db.col("lineitem.qty").unwrap(), 5, 6)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let db = db();
        let q = parse_query(&db, "select * from orders where orders.price < 25").unwrap();
        assert_eq!(q.filter_count(), 1);
    }

    #[test]
    fn flipped_comparisons_normalize() {
        let db = db();
        let q = parse_query(&db, "select * from orders where 15 <= orders.price").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::filter(db.col("orders.price").unwrap(), CmpOp::Ge, 15)
        );
    }

    #[test]
    fn negative_numbers_parse() {
        let db = db();
        let q = parse_query(&db, "select * from orders where orders.price > -5").unwrap();
        assert_eq!(
            q.predicates[0],
            Predicate::filter(db.col("orders.price").unwrap(), CmpOp::Gt, -5)
        );
    }

    #[test]
    fn no_where_clause_is_fine() {
        let db = db();
        let q = parse_query(&db, "select * from orders").unwrap();
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn neq_both_spellings() {
        let db = db();
        for opstr in ["<>", "!="] {
            let q = parse_query(
                &db,
                &format!("select * from orders where orders.price {opstr} 20"),
            )
            .unwrap();
            assert_eq!(
                q.predicates[0],
                Predicate::filter(db.col("orders.price").unwrap(), CmpOp::Neq, 20)
            );
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let db = db();
        for (sql, needle) in [
            ("select id from orders", "select *"),
            ("select * from nosuch", "unknown table"),
            (
                "select * from orders where orders.nope = 1",
                "unknown column",
            ),
            (
                "select * from orders where orders.price < orders.id",
                "equi-joins",
            ),
            (
                "select * from orders where orders.price",
                "comparison operator",
            ),
            ("select * from orders where 1 = 2", "pointless"),
            (
                "select * from orders where orders.price between 9 and 3",
                "inverted",
            ),
            ("select * from orders extra", "trailing"),
        ] {
            let e = parse_query(&db, sql).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{sql} → {e} (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn non_equi_join_on_distinct_tables_rejected() {
        let db = db();
        let e = parse_query(
            &db,
            "select * from orders, lineitem where lineitem.order_fk < orders.id",
        )
        .unwrap_err();
        assert!(e.to_string().contains("equi-joins"));
    }

    #[test]
    fn where_table_must_be_in_from() {
        let db = db();
        let e = parse_query(&db, "select * from orders where lineitem.qty = 5").unwrap_err();
        assert!(e.to_string().contains("outside the query"), "{e}");
    }
}

//! Disjoint-set union (union-find) used for separability checks.
//!
//! The separability test of Definition 2 asks whether a predicate set splits
//! into parts referencing disjoint table sets; treating predicates as
//! hyperedges over tables, the non-separable factors of the standard
//! decomposition (Lemma 2) are exactly the connected components of that
//! hypergraph. This tiny DSU with path compression and union-by-size backs
//! both computations here and in `sqe-core`.

/// Disjoint-set union over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns true when they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Groups elements by component, in first-seen order. Each group is
    /// sorted ascending.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut order: Vec<Option<usize>> = vec![None; n];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let r = self.find(i);
            match order[r] {
                Some(g) => out[g].push(i),
                None => {
                    order[r] = Some(out.len());
                    out.push(vec![i]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut d = Dsu::new(5);
        assert_eq!(d.component_count(), 5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0), "repeated union is a no-op");
        assert_eq!(d.component_count(), 3);
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        assert!(d.same(4, 3));
    }

    #[test]
    fn groups_partition_all_elements() {
        let mut d = Dsu::new(6);
        d.union(0, 2);
        d.union(2, 4);
        d.union(1, 5);
        let groups = d.groups();
        assert_eq!(groups.len(), 3);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        assert!(groups.contains(&vec![0, 2, 4]));
        assert!(groups.contains(&vec![1, 5]));
        assert!(groups.contains(&vec![3]));
    }

    #[test]
    fn path_compression_flattens() {
        let mut d = Dsu::new(4);
        d.union(0, 1);
        d.union(1, 2);
        d.union(2, 3);
        let r = d.find(3);
        assert_eq!(d.find(0), r);
        // After compression every node points (at most one hop) to the root.
        for i in 0..4 {
            let p = d.parent[i] as usize;
            assert_eq!(d.parent[p] as usize, p);
        }
    }

    #[test]
    fn empty_dsu() {
        let mut d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.groups().len(), 0);
        assert_eq!(d.component_count(), 0);
    }
}

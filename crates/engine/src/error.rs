//! Error type shared by all engine operations.

use std::fmt;

use crate::schema::TableId;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised by the engine substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced table id is not present in the database.
    UnknownTable(TableId),
    /// A referenced column index is out of range for its table.
    UnknownColumn { table: TableId, column: u16 },
    /// A predicate references a table that is not part of the query's
    /// table set.
    PredicateOutOfScope { table: TableId },
    /// Columns of a table have inconsistent lengths.
    RaggedTable { table: String },
    /// A query (or predicate component) spans disconnected tables and the
    /// requested operation cannot handle cross products of this size.
    CrossProductTooLarge { estimated_rows: u128, limit: u128 },
    /// A range predicate with `lo > hi`.
    EmptyRange { lo: i64, hi: i64 },
    /// A delta op addresses a row index past the table's current length.
    RowOutOfRange { table: TableId, row: usize },
    /// The operation needs at least one table.
    EmptyTableSet,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(t) => write!(f, "unknown table id {}", t.0),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column {} of table id {}", column, table.0)
            }
            EngineError::PredicateOutOfScope { table } => write!(
                f,
                "predicate references table id {} outside the query's table set",
                table.0
            ),
            EngineError::RaggedTable { table } => {
                write!(f, "table '{table}' has columns of differing lengths")
            }
            EngineError::CrossProductTooLarge {
                estimated_rows,
                limit,
            } => write!(
                f,
                "cross product of {estimated_rows} rows exceeds the materialization limit {limit}"
            ),
            EngineError::EmptyRange { lo, hi } => {
                write!(f, "range predicate with lo {lo} > hi {hi}")
            }
            EngineError::RowOutOfRange { table, row } => {
                write!(f, "row {row} out of range for table id {}", table.0)
            }
            EngineError::EmptyTableSet => write!(f, "operation requires at least one table"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::UnknownTable(TableId(7));
        assert!(e.to_string().contains('7'));
        let e = EngineError::CrossProductTooLarge {
            estimated_rows: 1_000_000,
            limit: 10,
        };
        assert!(e.to_string().contains("1000000"));
        let e = EngineError::RaggedTable {
            table: "orders".into(),
        };
        assert!(e.to_string().contains("orders"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            EngineError::EmptyTableSet,
            EngineError::EmptyTableSet.clone()
        );
        assert_ne!(
            EngineError::UnknownTable(TableId(1)),
            EngineError::UnknownTable(TableId(2))
        );
    }
}

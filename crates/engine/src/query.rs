//! SPJ queries in the paper's canonical form.

use std::fmt;

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::predicate::{tables_of, Predicate};
use crate::schema::TableId;

/// An SPJ query in canonical form: the cartesian product of `tables`
/// filtered by the conjunction of `predicates` (§2 of the paper). Projection
/// is irrelevant for cardinality estimation and therefore omitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpjQuery {
    /// Tables forming the cartesian product, in ascending id order.
    pub tables: Vec<TableId>,
    /// Conjunctive predicates over the product.
    pub predicates: Vec<Predicate>,
}

impl SpjQuery {
    /// Creates a query, normalizing the table order and validating that
    /// every predicate references only tables in the set.
    pub fn new(mut tables: Vec<TableId>, predicates: Vec<Predicate>) -> Result<Self> {
        tables.sort_unstable();
        tables.dedup();
        if tables.is_empty() {
            return Err(EngineError::EmptyTableSet);
        }
        for p in &predicates {
            for t in p.tables().iter() {
                if !tables.contains(&t) {
                    return Err(EngineError::PredicateOutOfScope { table: t });
                }
            }
        }
        Ok(SpjQuery { tables, predicates })
    }

    /// Creates a query whose table set is exactly the tables referenced by
    /// the predicates.
    pub fn from_predicates(predicates: Vec<Predicate>) -> Result<Self> {
        let tables = tables_of(&predicates);
        Self::new(tables, predicates)
    }

    /// Number of join predicates (the paper's parameter `J`).
    pub fn join_count(&self) -> usize {
        self.predicates.iter().filter(|p| p.is_join()).count()
    }

    /// Number of filter predicates (the paper's parameter `F`).
    pub fn filter_count(&self) -> usize {
        self.predicates.iter().filter(|p| p.is_filter()).count()
    }

    /// The join predicates.
    pub fn joins(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_join())
    }

    /// The filter predicates.
    pub fn filters(&self) -> impl Iterator<Item = &Predicate> {
        self.predicates.iter().filter(|p| p.is_filter())
    }

    /// `|R1 × … × Rn|`: the denominator of the selectivity definition.
    pub fn cross_product_size(&self, db: &Database) -> Result<u128> {
        db.cross_product_size(&self.tables)
    }

    /// Renders the query using catalog names, for logs and examples.
    pub fn display<'a>(&'a self, db: &'a Database) -> QueryDisplay<'a> {
        QueryDisplay { query: self, db }
    }
}

/// Pretty-printer for queries with resolved names.
pub struct QueryDisplay<'a> {
    query: &'a SpjQuery,
    db: &'a Database,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[")?;
        for (i, p) in self.query.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "](")?;
        for (i, t) in self.query.tables.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            match self.db.schema(*t) {
                Ok(s) => write!(f, "{}", s.name)?,
                Err(_) => write!(f, "{t}")?,
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, ColRef};
    use crate::table::TableBuilder;

    fn db2() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("b", vec![1, 2, 3])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn tables_are_normalized() {
        let q = SpjQuery::new(vec![TableId(1), TableId(0), TableId(1)], vec![]).unwrap();
        assert_eq!(q.tables, vec![TableId(0), TableId(1)]);
    }

    #[test]
    fn out_of_scope_predicate_rejected() {
        let p = Predicate::filter(ColRef::new(TableId(5), 0), CmpOp::Eq, 1);
        let err = SpjQuery::new(vec![TableId(0)], vec![p]).unwrap_err();
        assert!(matches!(err, EngineError::PredicateOutOfScope { .. }));
    }

    #[test]
    fn empty_table_set_rejected() {
        assert!(matches!(
            SpjQuery::new(vec![], vec![]),
            Err(EngineError::EmptyTableSet)
        ));
    }

    #[test]
    fn from_predicates_infers_tables() {
        let j = Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0));
        let q = SpjQuery::from_predicates(vec![j]).unwrap();
        assert_eq!(q.tables, vec![TableId(0), TableId(1)]);
        assert_eq!(q.join_count(), 1);
        assert_eq!(q.filter_count(), 0);
    }

    #[test]
    fn counts_and_iterators_agree() {
        let j = Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0));
        let f = Predicate::range(ColRef::new(TableId(0), 0), 0, 1);
        let q = SpjQuery::from_predicates(vec![j, f]).unwrap();
        assert_eq!(q.joins().count(), q.join_count());
        assert_eq!(q.filters().count(), q.filter_count());
    }

    #[test]
    fn display_uses_names() {
        let db = db2();
        let j = Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0));
        let q = SpjQuery::from_predicates(vec![j]).unwrap();
        let s = q.display(&db).to_string();
        assert!(s.contains('r') && s.contains('s'), "{s}");
    }

    #[test]
    fn cross_product_size_from_db() {
        let db = db2();
        let q = SpjQuery::new(vec![TableId(0), TableId(1)], vec![]).unwrap();
        assert_eq!(q.cross_product_size(&db).unwrap(), 6);
    }
}

//! Schema and catalog types.

use std::fmt;

/// Identifier of a table within a [`crate::Database`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Schema of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSchema {
    /// Human-readable column name (unique within its table).
    pub name: String,
}

impl ColumnSchema {
    /// Creates a column schema.
    pub fn new(name: impl Into<String>) -> Self {
        ColumnSchema { name: name.into() }
    }
}

/// Schema of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Human-readable table name (unique within the catalog).
    pub name: String,
    /// Ordered column schemas.
    pub columns: Vec<ColumnSchema>,
}

impl TableSchema {
    /// Creates a table schema from a name and column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        TableSchema {
            name: name.into(),
            columns: columns.iter().map(|c| ColumnSchema::new(*c)).collect(),
        }
    }

    /// Index of the column with the given name.
    pub fn column_index(&self, name: &str) -> Option<u16> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u16)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A catalog: the ordered collection of table schemas in a database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    schemas: Vec<TableSchema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema, returning the new table's id.
    pub fn add(&mut self, schema: TableSchema) -> TableId {
        let id = TableId(self.schemas.len() as u32);
        self.schemas.push(schema);
        id
    }

    /// Schema of a table.
    pub fn schema(&self, id: TableId) -> Option<&TableSchema> {
        self.schemas.get(id.0 as usize)
    }

    /// Id of the table with the given name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.schemas
            .iter()
            .position(|s| s.name == name)
            .map(|i| TableId(i as u32))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates over `(id, schema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (TableId(i as u32), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_assigns_sequential_ids() {
        let mut cat = Catalog::new();
        let a = cat.add(TableSchema::new("a", &["x"]));
        let b = cat.add(TableSchema::new("b", &["y", "z"]));
        assert_eq!(a, TableId(0));
        assert_eq!(b, TableId(1));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table_id("b"), Some(b));
        assert_eq!(cat.table_id("missing"), None);
    }

    #[test]
    fn column_lookup_by_name() {
        let s = TableSchema::new("orders", &["o_id", "total_price", "date"]);
        assert_eq!(s.column_index("total_price"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn table_id_displays_compactly() {
        assert_eq!(TableId(3).to_string(), "T3");
    }

    #[test]
    fn catalog_iteration_pairs_ids() {
        let mut cat = Catalog::new();
        cat.add(TableSchema::new("a", &["x"]));
        cat.add(TableSchema::new("b", &["y"]));
        let names: Vec<_> = cat.iter().map(|(id, s)| (id.0, s.name.clone())).collect();
        assert_eq!(names, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}

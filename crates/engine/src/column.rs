//! Nullable `i64` column storage.
//!
//! Values are stored densely in a `Vec<i64>`; nullability is tracked by an
//! optional validity bitmap (one bit per row, `1` = valid). Columns that
//! contain no NULLs carry no bitmap at all, so the common case costs nothing.

/// A nullable column of `i64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Column {
    values: Vec<i64>,
    /// `None` means every row is valid. Otherwise one bit per row, LSB-first
    /// within each `u64` word; bit set = valid (non-NULL).
    validity: Option<Vec<u64>>,
    null_count: usize,
}

impl Column {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a column from non-null values.
    pub fn from_values(values: Vec<i64>) -> Self {
        Column {
            values,
            validity: None,
            null_count: 0,
        }
    }

    /// Creates a column from optional values (NULL = `None`).
    pub fn from_options(values: Vec<Option<i64>>) -> Self {
        let mut col = Column::with_capacity(values.len());
        for v in values {
            col.push(v);
        }
        col
    }

    /// Creates an empty column with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Column {
            values: Vec::with_capacity(capacity),
            validity: None,
            null_count: 0,
        }
    }

    /// Number of rows (including NULLs).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Appends a value (or NULL).
    pub fn push(&mut self, value: Option<i64>) {
        let row = self.values.len();
        match value {
            Some(v) => {
                self.values.push(v);
                if let Some(bits) = &mut self.validity {
                    Self::grow_bitmap(bits, row + 1);
                    bits[row / 64] |= 1 << (row % 64);
                }
            }
            None => {
                self.values.push(0);
                let bits = match &mut self.validity {
                    Some(bits) => bits,
                    None => {
                        // Materialize an all-valid bitmap for the prefix.
                        let words = (row + 64) / 64;
                        let mut bits = vec![u64::MAX; words];
                        // Clear trailing bits beyond `row`.
                        for i in row..words * 64 {
                            bits[i / 64] &= !(1 << (i % 64));
                        }
                        for i in 0..row {
                            bits[i / 64] |= 1 << (i % 64);
                        }
                        self.validity = Some(bits);
                        self.validity.as_mut().expect("just set")
                    }
                };
                Self::grow_bitmap(bits, row + 1);
                bits[row / 64] &= !(1 << (row % 64));
                self.null_count += 1;
            }
        }
    }

    fn grow_bitmap(bits: &mut Vec<u64>, rows: usize) {
        let words = rows.div_ceil(64);
        if bits.len() < words {
            bits.resize(words, 0);
        }
    }

    /// True if the row holds a non-NULL value.
    #[inline]
    pub fn is_valid(&self, row: usize) -> bool {
        debug_assert!(row < self.values.len());
        match &self.validity {
            None => true,
            Some(bits) => bits[row / 64] & (1 << (row % 64)) != 0,
        }
    }

    /// Returns the value at `row`, or `None` for NULL.
    #[inline]
    pub fn get(&self, row: usize) -> Option<i64> {
        if self.is_valid(row) {
            Some(self.values[row])
        } else {
            None
        }
    }

    /// Returns the raw value at `row` without checking validity. Only
    /// meaningful when `is_valid(row)`.
    #[inline]
    pub fn value_unchecked(&self, row: usize) -> i64 {
        self.values[row]
    }

    /// Iterates over all rows as `Option<i64>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<i64>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Iterates over the non-NULL values.
    pub fn iter_valid(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len()).filter_map(move |i| self.get(i))
    }

    /// Collects the non-NULL values into a vector.
    pub fn valid_values(&self) -> Vec<i64> {
        self.iter_valid().collect()
    }

    /// Gathers the values at `rows` (preserving order, NULLs skipped).
    pub fn gather_valid(&self, rows: &[u32]) -> Vec<i64> {
        let mut out = Vec::with_capacity(rows.len());
        for &r in rows {
            if let Some(v) = self.get(r as usize) {
                out.push(v);
            }
        }
        out
    }

    /// Minimum and maximum of the non-NULL values, or `None` when all rows
    /// are NULL (or the column is empty).
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.iter_valid();
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

impl FromIterator<i64> for Column {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        Column::from_values(iter.into_iter().collect())
    }
}

impl FromIterator<Option<i64>> for Column {
    fn from_iter<T: IntoIterator<Item = Option<i64>>>(iter: T) -> Self {
        Column::from_options(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_null_column_has_no_bitmap() {
        let c = Column::from_values(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 0);
        assert!(c.validity.is_none());
        assert_eq!(c.get(1), Some(2));
    }

    #[test]
    fn push_null_materializes_bitmap() {
        let mut c = Column::from_values(vec![10, 20]);
        c.push(None);
        c.push(Some(40));
        assert_eq!(c.len(), 4);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0), Some(10));
        assert_eq!(c.get(1), Some(20));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(3), Some(40));
    }

    #[test]
    fn bitmap_handles_word_boundaries() {
        let mut c = Column::new();
        for i in 0..200 {
            if i % 3 == 0 {
                c.push(None);
            } else {
                c.push(Some(i));
            }
        }
        for i in 0..200 {
            if i % 3 == 0 {
                assert_eq!(c.get(i as usize), None, "row {i}");
            } else {
                assert_eq!(c.get(i as usize), Some(i), "row {i}");
            }
        }
        assert_eq!(c.null_count(), 67);
    }

    #[test]
    fn from_options_round_trips() {
        let vals = vec![Some(1), None, Some(-5), None, Some(i64::MAX)];
        let c = Column::from_options(vals.clone());
        assert_eq!(c.iter().collect::<Vec<_>>(), vals);
    }

    #[test]
    fn iter_valid_skips_nulls() {
        let c = Column::from_options(vec![Some(1), None, Some(3)]);
        assert_eq!(c.valid_values(), vec![1, 3]);
    }

    #[test]
    fn gather_valid_respects_order_and_nulls() {
        let c = Column::from_options(vec![Some(5), None, Some(7), Some(9)]);
        assert_eq!(c.gather_valid(&[3, 1, 0]), vec![9, 5]);
    }

    #[test]
    fn min_max_ignores_nulls() {
        let c = Column::from_options(vec![None, Some(4), Some(-2), None]);
        assert_eq!(c.min_max(), Some((-2, 4)));
        let all_null = Column::from_options(vec![None, None]);
        assert_eq!(all_null.min_max(), None);
        assert_eq!(Column::new().min_max(), None);
    }

    #[test]
    fn collects_from_iterators() {
        let c: Column = (0..5).collect();
        assert_eq!(c.len(), 5);
        let c: Column = vec![Some(1), None].into_iter().collect();
        assert_eq!(c.null_count(), 1);
    }
}

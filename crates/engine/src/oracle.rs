//! Memoized *true* cardinality / selectivity oracle.
//!
//! The paper's evaluation metric (§5) needs the actual cardinality of every
//! sub-query of every workload query, and the `GS-Opt` error function needs
//! true conditional selectivities. Evaluating each of the `2ⁿ` predicate
//! subsets independently would be wasteful: the oracle decomposes every
//! request into the non-separable components of its predicate hypergraph
//! (the product of component cardinalities is exact by Property 2) and
//! memoizes per component, so the subsets of one query share almost all
//! execution work.

use std::collections::HashMap;

use crate::database::Database;
use crate::error::Result;
use crate::exec::{components, execute_connected};
use crate::predicate::Predicate;
use crate::schema::TableId;

type ComponentKey = (Vec<TableId>, Vec<Predicate>);

/// Memoizing oracle for exact cardinalities and selectivities.
pub struct CardinalityOracle<'a> {
    db: &'a Database,
    memo: HashMap<ComponentKey, u64>,
    hits: u64,
    misses: u64,
}

impl<'a> CardinalityOracle<'a> {
    /// Creates an oracle over a database.
    pub fn new(db: &'a Database) -> Self {
        CardinalityOracle {
            db,
            memo: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// `(memo hits, memo misses)` — for tests and diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Exact `|σ_P(R1 × … × Rn)|`.
    pub fn cardinality(&mut self, tables: &[TableId], preds: &[Predicate]) -> Result<u128> {
        let mut card: u128 = 1;
        for (comp_tables, comp_preds) in components(tables, preds) {
            card = card.saturating_mul(self.component_count(comp_tables, comp_preds)? as u128);
            if card == 0 {
                return Ok(0);
            }
        }
        Ok(card)
    }

    fn component_count(
        &mut self,
        comp_tables: Vec<TableId>,
        mut comp_preds: Vec<Predicate>,
    ) -> Result<u64> {
        comp_preds.sort_unstable();
        comp_preds.dedup();
        let key = (comp_tables, comp_preds);
        if let Some(&c) = self.memo.get(&key) {
            self.hits += 1;
            return Ok(c);
        }
        self.misses += 1;
        let (comp_tables, comp_preds) = &key;
        let count = if comp_preds.is_empty() {
            debug_assert_eq!(comp_tables.len(), 1);
            self.db.row_count(comp_tables[0])? as u64
        } else {
            execute_connected(self.db, comp_tables, comp_preds)?.len() as u64
        };
        self.memo.insert(key, count);
        Ok(count)
    }

    /// Exact selectivity `Sel_R(P) = |σ_P(R^×)| / |R^×|`.
    pub fn selectivity(&mut self, tables: &[TableId], preds: &[Predicate]) -> Result<f64> {
        let total = self.db.cross_product_size(tables)?;
        if total == 0 {
            return Ok(0.0);
        }
        let card = self.cardinality(tables, preds)?;
        Ok(card as f64 / total as f64)
    }

    /// Exact conditional selectivity `Sel_R(P|Q) = |σ_{P∧Q}(R^×)| /
    /// |σ_Q(R^×)|` (Definition 1). When `σ_Q` is empty the factor is
    /// reported as 0 — any decomposition containing it multiplies against a
    /// zero `Sel(Q)`, so the overall product is 0 either way.
    pub fn conditional_selectivity(
        &mut self,
        tables: &[TableId],
        p: &[Predicate],
        q: &[Predicate],
    ) -> Result<f64> {
        let denom = self.cardinality(tables, q)?;
        if denom == 0 {
            return Ok(0.0);
        }
        let mut all: Vec<Predicate> = p.to_vec();
        all.extend_from_slice(q);
        let num = self.cardinality(tables, &all)?;
        Ok(num as f64 / denom as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{count_brute_force, DEFAULT_LIMIT};
    use crate::predicate::{CmpOp, ColRef};
    use crate::table::TableBuilder;

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3, 4])
                .column("x", vec![1, 1, 2, 3])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![1, 2, 2])
                .column("b", vec![5, 6, 7])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn cardinality_matches_brute_force_on_all_subsets() {
        let db = db();
        let tables = [TableId(0), TableId(1)];
        let preds = [
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::range(c(0, 0), 1, 2),
            Predicate::filter(c(1, 1), CmpOp::Ge, 6),
        ];
        let mut oracle = CardinalityOracle::new(&db);
        for mask in 0u32..8 {
            let sub: Vec<Predicate> = preds
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, p)| *p)
                .collect();
            let got = oracle.cardinality(&tables, &sub).unwrap();
            let want = count_brute_force(&db, &tables, &sub, DEFAULT_LIMIT).unwrap();
            assert_eq!(got, want as u128, "mask {mask}");
        }
    }

    #[test]
    fn memoization_reuses_components() {
        let db = db();
        let tables = [TableId(0), TableId(1)];
        let j = Predicate::join(c(0, 1), c(1, 0));
        let mut oracle = CardinalityOracle::new(&db);
        oracle.cardinality(&tables, &[j]).unwrap();
        let (h0, m0) = oracle.stats();
        // {j} plus a separable filter reuses the {j} component and the
        // lone-filter component is new.
        oracle.cardinality(&tables, &[j]).unwrap();
        let (h1, m1) = oracle.stats();
        assert!(h1 > h0);
        assert_eq!(m1, m0);
    }

    #[test]
    fn atomic_decomposition_property_holds_exactly() {
        // Sel(P,Q) = Sel(P|Q)·Sel(Q) — Property 1 is assumption-free.
        let db = db();
        let tables = [TableId(0), TableId(1)];
        let p = [Predicate::range(c(0, 0), 1, 2)];
        let q = [Predicate::join(c(0, 1), c(1, 0))];
        let mut oracle = CardinalityOracle::new(&db);
        let all: Vec<Predicate> = p.iter().chain(q.iter()).copied().collect();
        let joint = oracle.selectivity(&tables, &all).unwrap();
        let cond = oracle.conditional_selectivity(&tables, &p, &q).unwrap();
        let marginal = oracle.selectivity(&tables, &q).unwrap();
        assert!((joint - cond * marginal).abs() < 1e-12);
    }

    #[test]
    fn conditional_on_empty_condition_is_plain_selectivity() {
        let db = db();
        let tables = [TableId(0)];
        let p = [Predicate::range(c(0, 0), 1, 2)];
        let mut oracle = CardinalityOracle::new(&db);
        let cond = oracle.conditional_selectivity(&tables, &p, &[]).unwrap();
        let plain = oracle.selectivity(&tables, &p).unwrap();
        assert_eq!(cond, plain);
    }

    #[test]
    fn empty_denominator_reports_zero() {
        let db = db();
        let tables = [TableId(0)];
        let q = [Predicate::filter(c(0, 0), CmpOp::Gt, 1000)];
        let p = [Predicate::range(c(0, 0), 1, 2)];
        let mut oracle = CardinalityOracle::new(&db);
        assert_eq!(
            oracle.conditional_selectivity(&tables, &p, &q).unwrap(),
            0.0
        );
    }

    #[test]
    fn duplicate_predicates_share_memo_entries() {
        let db = db();
        let tables = [TableId(0)];
        let f = Predicate::range(c(0, 0), 1, 2);
        let mut oracle = CardinalityOracle::new(&db);
        let a = oracle.cardinality(&tables, &[f, f]).unwrap();
        let b = oracle.cardinality(&tables, &[f]).unwrap();
        assert_eq!(a, b);
        assert_eq!(oracle.stats().0, 1, "second call hits the memo");
    }
}

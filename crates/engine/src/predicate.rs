//! SPJ predicates over the canonical form `σ_{p1 ∧ … ∧ pk}(R1 × … × Rn)`.
//!
//! The paper works with two predicate shapes: *filter* predicates comparing
//! one column against a constant (or a constant range), and equi-*join*
//! predicates between two columns. NULL semantics are SQL-like: a NULL never
//! satisfies any predicate.

use std::fmt;

use crate::schema::TableId;

/// A reference to a column of a base table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ColRef {
    /// Owning table.
    pub table: TableId,
    /// Column index within the table.
    pub column: u16,
}

impl ColRef {
    /// Creates a column reference.
    pub fn new(table: TableId, column: u16) -> Self {
        ColRef { table, column }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.c{}", self.table, self.column)
    }
}

/// Comparison operator for filter predicates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Neq,
}

impl CmpOp {
    /// Applies the comparison.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Neq => lhs != rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
        };
        f.write_str(s)
    }
}

/// A predicate over the cartesian product of a query's tables.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Predicate {
    /// `col op constant`.
    Filter {
        /// Column being filtered.
        col: ColRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant operand.
        value: i64,
    },
    /// `lo <= col <= hi` (both inclusive). This is the shape the workload
    /// generator produces (the paper stretches ranges until non-empty).
    Range {
        /// Column being filtered.
        col: ColRef,
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Equi-join `left = right` between columns of two tables.
    Join {
        /// Left column.
        left: ColRef,
        /// Right column.
        right: ColRef,
    },
}

impl Predicate {
    /// Convenience constructor for a filter.
    pub fn filter(col: ColRef, op: CmpOp, value: i64) -> Self {
        Predicate::Filter { col, op, value }
    }

    /// Convenience constructor for an inclusive range.
    pub fn range(col: ColRef, lo: i64, hi: i64) -> Self {
        Predicate::Range { col, lo, hi }
    }

    /// Convenience constructor for an equi-join. The two sides are stored in
    /// canonical (sorted) order so structurally equal joins compare equal.
    pub fn join(a: ColRef, b: ColRef) -> Self {
        if a <= b {
            Predicate::Join { left: a, right: b }
        } else {
            Predicate::Join { left: b, right: a }
        }
    }

    /// True for join predicates.
    pub fn is_join(&self) -> bool {
        matches!(self, Predicate::Join { .. })
    }

    /// True for filter (including range) predicates.
    pub fn is_filter(&self) -> bool {
        !self.is_join()
    }

    /// The set of tables referenced, as one or two ids (the paper's
    /// `tables(p)`).
    pub fn tables(&self) -> PredTables {
        match self {
            Predicate::Filter { col, .. } | Predicate::Range { col, .. } => {
                PredTables::One(col.table)
            }
            Predicate::Join { left, right } => {
                if left.table == right.table {
                    PredTables::One(left.table)
                } else {
                    PredTables::Two(left.table, right.table)
                }
            }
        }
    }

    /// The columns referenced (the paper's `attr(p)`).
    pub fn columns(&self) -> PredColumns {
        match self {
            Predicate::Filter { col, .. } | Predicate::Range { col, .. } => PredColumns::One(*col),
            Predicate::Join { left, right } => PredColumns::Two(*left, *right),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Filter { col, op, value } => write!(f, "{col} {op} {value}"),
            Predicate::Range { col, lo, hi } => write!(f, "{lo} <= {col} <= {hi}"),
            Predicate::Join { left, right } => write!(f, "{left} = {right}"),
        }
    }
}

/// One or two table ids referenced by a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredTables {
    /// Single-table predicate.
    One(TableId),
    /// Cross-table join.
    Two(TableId, TableId),
}

impl PredTables {
    /// Iterates over the referenced tables.
    pub fn iter(self) -> impl Iterator<Item = TableId> {
        let (a, b) = match self {
            PredTables::One(a) => (a, None),
            PredTables::Two(a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }
}

/// One or two column refs referenced by a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredColumns {
    /// Single column.
    One(ColRef),
    /// Two columns (join).
    Two(ColRef, ColRef),
}

impl PredColumns {
    /// Iterates over the referenced columns.
    pub fn iter(self) -> impl Iterator<Item = ColRef> {
        let (a, b) = match self {
            PredColumns::One(a) => (a, None),
            PredColumns::Two(a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }
}

/// Collects the distinct tables referenced by a slice of predicates (the
/// paper's `tables(P)`), in ascending id order.
pub fn tables_of(preds: &[Predicate]) -> Vec<TableId> {
    let mut out: Vec<TableId> = preds.iter().flat_map(|p| p.tables().iter()).collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    #[test]
    fn cmp_ops_evaluate() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Neq.eval(1, 2));
    }

    #[test]
    fn join_is_canonicalized() {
        let p1 = Predicate::join(c(1, 0), c(0, 2));
        let p2 = Predicate::join(c(0, 2), c(1, 0));
        assert_eq!(p1, p2);
        match p1 {
            Predicate::Join { left, right } => {
                assert!(left <= right);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tables_and_columns_of_predicates() {
        let f = Predicate::range(c(2, 1), 0, 9);
        assert_eq!(f.tables().iter().collect::<Vec<_>>(), vec![TableId(2)]);
        assert_eq!(f.columns().iter().count(), 1);
        let j = Predicate::join(c(0, 0), c(1, 1));
        assert_eq!(
            j.tables().iter().collect::<Vec<_>>(),
            vec![TableId(0), TableId(1)]
        );
        assert_eq!(j.columns().iter().count(), 2);
        // self-join on the same table counts one table
        let sj = Predicate::join(c(3, 0), c(3, 1));
        assert_eq!(sj.tables().iter().collect::<Vec<_>>(), vec![TableId(3)]);
    }

    #[test]
    fn tables_of_dedups_and_sorts() {
        let preds = vec![
            Predicate::join(c(2, 0), c(1, 0)),
            Predicate::range(c(1, 1), 0, 5),
            Predicate::filter(c(0, 0), CmpOp::Eq, 7),
        ];
        assert_eq!(tables_of(&preds), vec![TableId(0), TableId(1), TableId(2)]);
    }

    #[test]
    fn display_round_trip_is_readable() {
        let p = Predicate::filter(c(0, 1), CmpOp::Lt, 10);
        assert_eq!(p.to_string(), "T0.c1 < 10");
        let r = Predicate::range(c(0, 1), 2, 8);
        assert_eq!(r.to_string(), "2 <= T0.c1 <= 8");
        let j = Predicate::join(c(0, 1), c(1, 0));
        assert_eq!(j.to_string(), "T0.c1 = T1.c0");
    }

    #[test]
    fn filter_vs_join_classification() {
        assert!(Predicate::filter(c(0, 0), CmpOp::Eq, 1).is_filter());
        assert!(Predicate::range(c(0, 0), 1, 2).is_filter());
        assert!(Predicate::join(c(0, 0), c(1, 0)).is_join());
    }
}

//! SPJ execution: filters and hash joins over row-id sets.
//!
//! The executor materializes results as [`RowSet`]s: for each result tuple it
//! stores one row index per participating base table (struct-of-arrays).
//! This is exactly what the rest of the system needs — true cardinalities
//! come from `RowSet::len`, and SITs are built by gathering a single column
//! over the row set.
//!
//! [`execute_connected`] evaluates a *connected* predicate set (no cross
//! products) by filtering base tables first and then greedily hash-joining,
//! smallest input first. [`execute`] evaluates arbitrary predicate sets by
//! splitting them into non-separable components (Property 2 of the paper
//! makes the product of component cardinalities exact) so cross products are
//! never materialized.

use std::collections::HashMap;

use crate::column::Column;
use crate::database::Database;
use crate::dsu::Dsu;
use crate::error::{EngineError, Result};
use crate::predicate::{ColRef, PredTables, Predicate};
use crate::schema::TableId;

/// A materialized SPJ result: row indices into each participating table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowSet {
    tables: Vec<TableId>,
    /// `rows[t]` has one entry per result tuple: the row index into
    /// `tables[t]`. All inner vectors share the same length.
    rows: Vec<Vec<u32>>,
}

impl RowSet {
    /// A row set over a single base table containing the given rows.
    pub fn from_rows(table: TableId, rows: Vec<u32>) -> Self {
        RowSet {
            tables: vec![table],
            rows: vec![rows],
        }
    }

    /// A row set containing every row of a base table.
    pub fn base(db: &Database, table: TableId) -> Result<Self> {
        let n = db.row_count(table)?;
        Ok(Self::from_rows(table, (0..n as u32).collect()))
    }

    /// Participating tables (ascending order).
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of `table` within this row set.
    fn slot(&self, table: TableId) -> Option<usize> {
        self.tables.iter().position(|&t| t == table)
    }

    /// Row indices into `table` for each result tuple.
    pub fn rows_of(&self, table: TableId) -> Option<&[u32]> {
        self.slot(table).map(|s| self.rows[s].as_slice())
    }

    /// Gathers the values of `col` across the result tuples, preserving
    /// NULLs. Fails when the column's table is not part of the result.
    pub fn gather(&self, db: &Database, col: ColRef) -> Result<Column> {
        let slot = self
            .slot(col.table)
            .ok_or(EngineError::PredicateOutOfScope { table: col.table })?;
        let base = db.column(col)?;
        let mut out = Column::with_capacity(self.len());
        for &r in &self.rows[slot] {
            out.push(base.get(r as usize));
        }
        Ok(out)
    }

    /// Retains only the tuples at the given positions.
    fn select_positions(&mut self, keep: &[u32]) {
        for rows in &mut self.rows {
            let mut out = Vec::with_capacity(keep.len());
            for &k in keep {
                out.push(rows[k as usize]);
            }
            *rows = out;
        }
    }

    /// Applies a predicate to the tuples of this row set. Join predicates
    /// must reference tables already present (i.e. act as residual filters).
    pub fn filter(&mut self, db: &Database, pred: &Predicate) -> Result<()> {
        let keep: Vec<u32> = match pred {
            Predicate::Filter { col, op, value } => {
                let vals = self.gather(db, *col)?;
                (0..self.len() as u32)
                    .filter(|&i| vals.get(i as usize).is_some_and(|v| op.eval(v, *value)))
                    .collect()
            }
            Predicate::Range { col, lo, hi } => {
                let vals = self.gather(db, *col)?;
                (0..self.len() as u32)
                    .filter(|&i| vals.get(i as usize).is_some_and(|v| *lo <= v && v <= *hi))
                    .collect()
            }
            Predicate::Join { left, right } => {
                let lv = self.gather(db, *left)?;
                let rv = self.gather(db, *right)?;
                (0..self.len() as u32)
                    .filter(|&i| {
                        matches!(
                            (lv.get(i as usize), rv.get(i as usize)),
                            (Some(a), Some(b)) if a == b
                        )
                    })
                    .collect()
            }
        };
        self.select_positions(&keep);
        Ok(())
    }

    /// Hash-joins two row sets on `left_col = right_col` (columns belong to
    /// `self` and `other` respectively). Builds on the smaller side.
    pub fn join(
        &self,
        other: &RowSet,
        db: &Database,
        left_col: ColRef,
        right_col: ColRef,
    ) -> Result<RowSet> {
        debug_assert!(self.slot(left_col.table).is_some());
        debug_assert!(other.slot(right_col.table).is_some());
        // Always *build* on the smaller input, *probe* with the larger.
        let (build, probe, build_col, probe_col, build_is_self) = if self.len() <= other.len() {
            (self, other, left_col, right_col, true)
        } else {
            (other, self, right_col, left_col, false)
        };

        let build_vals = build.gather(db, build_col)?;
        let mut ht: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build.len());
        for i in 0..build.len() {
            if let Some(v) = build_vals.get(i) {
                ht.entry(v).or_default().push(i as u32);
            }
        }

        let probe_vals = probe.gather(db, probe_col)?;
        let mut build_pos: Vec<u32> = Vec::new();
        let mut probe_pos: Vec<u32> = Vec::new();
        for i in 0..probe.len() {
            if let Some(v) = probe_vals.get(i) {
                if let Some(matches) = ht.get(&v) {
                    for &b in matches {
                        build_pos.push(b);
                        probe_pos.push(i as u32);
                    }
                }
            }
        }

        // Assemble the output with tables in ascending-id order.
        let mut pairs: Vec<(TableId, Vec<u32>)> =
            Vec::with_capacity(self.tables.len() + other.tables.len());
        for (slot, &t) in build.tables.iter().enumerate() {
            let src = &build.rows[slot];
            pairs.push((t, build_pos.iter().map(|&p| src[p as usize]).collect()));
        }
        let probe_side = if build_is_self { other } else { self };
        for (slot, &t) in probe_side.tables.iter().enumerate() {
            let src = &probe_side.rows[slot];
            pairs.push((t, probe_pos.iter().map(|&p| src[p as usize]).collect()));
        }
        pairs.sort_by_key(|(t, _)| *t);
        let tables = pairs.iter().map(|(t, _)| *t).collect();
        let rows = pairs.into_iter().map(|(_, r)| r).collect();
        Ok(RowSet { tables, rows })
    }
}

/// Splits `(tables, predicates)` into the connected components of the
/// predicate hypergraph. Tables referenced by no predicate form singleton
/// components with an empty predicate list. Component order follows the
/// (sorted) table order; predicates keep their input order.
pub fn components(tables: &[TableId], preds: &[Predicate]) -> Vec<(Vec<TableId>, Vec<Predicate>)> {
    let mut sorted: Vec<TableId> = tables.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let index_of = |t: TableId| sorted.binary_search(&t).expect("table in scope");
    let mut dsu = Dsu::new(sorted.len());
    for p in preds {
        if let PredTables::Two(a, b) = p.tables() {
            dsu.union(index_of(a), index_of(b));
        }
    }
    let groups = dsu.groups();
    let mut out: Vec<(Vec<TableId>, Vec<Predicate>)> = groups
        .iter()
        .map(|g| (g.iter().map(|&i| sorted[i]).collect(), Vec::new()))
        .collect();
    // Map each table to its component.
    let mut comp_of = vec![0usize; sorted.len()];
    for (ci, g) in groups.iter().enumerate() {
        for &i in g {
            comp_of[i] = ci;
        }
    }
    for p in preds {
        let t = p
            .tables()
            .iter()
            .next()
            .expect("predicate references a table");
        out[comp_of[index_of(t)]].1.push(*p);
    }
    out
}

/// Evaluates a *connected* predicate set over its tables, producing the
/// materialized result. All tables must be reachable from each other through
/// join predicates; otherwise a [`EngineError::CrossProductTooLarge`] is
/// reported (the caller should decompose with [`components`] or use
/// [`execute`]).
pub fn execute_connected(db: &Database, tables: &[TableId], preds: &[Predicate]) -> Result<RowSet> {
    if tables.is_empty() {
        return Err(EngineError::EmptyTableSet);
    }
    let mut sorted: Vec<TableId> = tables.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    // 1. Per-table filtered row sets (single-table predicates applied).
    let mut base: HashMap<TableId, RowSet> = HashMap::with_capacity(sorted.len());
    for &t in &sorted {
        base.insert(t, RowSet::base(db, t)?);
    }
    let mut cross_joins: Vec<&Predicate> = Vec::new();
    for p in preds {
        match p.tables() {
            PredTables::One(t) => {
                let rs = base
                    .get_mut(&t)
                    .ok_or(EngineError::PredicateOutOfScope { table: t })?;
                rs.filter(db, p)?;
            }
            PredTables::Two(a, b) => {
                if !base.contains_key(&a) {
                    return Err(EngineError::PredicateOutOfScope { table: a });
                }
                if !base.contains_key(&b) {
                    return Err(EngineError::PredicateOutOfScope { table: b });
                }
                cross_joins.push(p);
            }
        }
    }

    // 2. Greedy join order: start from the smallest filtered table and
    //    repeatedly join in the neighbour producing the smallest input.
    let mut current = {
        let start = *sorted
            .iter()
            .min_by_key(|t| base[t].len())
            .expect("non-empty table set");
        base.remove(&start).expect("present")
    };
    let mut pending: Vec<&Predicate> = cross_joins;
    while !pending.is_empty() {
        // Residual joins: both sides already joined in. Expansion joins:
        // exactly one side joined in; pick the one whose new table is
        // smallest after base filtering.
        let mut residual = Vec::new();
        let mut next: Option<(usize, ColRef, ColRef, usize)> = None;
        for (i, p) in pending.iter().enumerate() {
            let Predicate::Join { left, right } = p else {
                unreachable!("pending holds joins only")
            };
            let l_in = current.slot(left.table).is_some();
            let r_in = current.slot(right.table).is_some();
            let candidate = match (l_in, r_in) {
                (true, true) => {
                    residual.push(i);
                    continue;
                }
                (true, false) => Some((*left, *right, base[&right.table].len())),
                (false, true) => Some((*right, *left, base[&left.table].len())),
                (false, false) => None,
            };
            if let Some((cur_col, new_col, size)) = candidate {
                if next.is_none_or(|(_, _, _, best)| size < best) {
                    next = Some((i, cur_col, new_col, size));
                }
            }
        }
        // Apply residual predicates first (cheap, shrinks the intermediate).
        if !residual.is_empty() {
            for &i in residual.iter().rev() {
                let p = pending.remove(i);
                current.filter(db, p)?;
            }
            continue;
        }
        let Some((idx, cur_col, new_col, _)) = next else {
            // No join touches the current component: the query is
            // disconnected.
            let est = db.cross_product_size(&sorted)?;
            return Err(EngineError::CrossProductTooLarge {
                estimated_rows: est,
                limit: 0,
            });
        };
        pending.remove(idx);
        let other = base.remove(&new_col.table).expect("unjoined table present");
        current = current.join(&other, db, cur_col, new_col)?;
    }

    if !base.is_empty() {
        // Tables never referenced by a join: disconnected query.
        let est = db.cross_product_size(&sorted)?;
        return Err(EngineError::CrossProductTooLarge {
            estimated_rows: est,
            limit: 0,
        });
    }
    Ok(current)
}

/// Exact cardinality of `σ_P(R1 × … × Rn)`, decomposing into non-separable
/// components (never materializing cross products).
pub fn execute(db: &Database, tables: &[TableId], preds: &[Predicate]) -> Result<u128> {
    if tables.is_empty() {
        return Err(EngineError::EmptyTableSet);
    }
    let mut card: u128 = 1;
    for (comp_tables, comp_preds) in components(tables, preds) {
        let c = if comp_preds.is_empty() {
            debug_assert_eq!(comp_tables.len(), 1);
            db.row_count(comp_tables[0])? as u128
        } else {
            execute_connected(db, &comp_tables, &comp_preds)?.len() as u128
        };
        card = card.saturating_mul(c);
        if card == 0 {
            return Ok(0);
        }
    }
    Ok(card)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::table::TableBuilder;

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db3() -> Database {
        let mut db = Database::new();
        // r(a, x): 4 rows
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3, 4])
                .column("x", vec![10, 10, 20, 30])
                .build()
                .unwrap(),
        );
        // s(y, b): 5 rows, y has a NULL
        db.add_table(
            TableBuilder::new("s")
                .nullable_column("y", vec![Some(10), Some(20), Some(20), None, Some(40)])
                .column("b", vec![100, 200, 300, 400, 500])
                .build()
                .unwrap(),
        );
        // t(z): 3 rows
        db.add_table(
            TableBuilder::new("t")
                .column("z", vec![100, 100, 300])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn base_rowset_covers_all_rows() {
        let db = db3();
        let rs = RowSet::base(&db, TableId(0)).unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.rows_of(TableId(0)).unwrap(), &[0, 1, 2, 3]);
    }

    #[test]
    fn filter_respects_nulls() {
        let db = db3();
        let mut rs = RowSet::base(&db, TableId(1)).unwrap();
        rs.filter(&db, &Predicate::filter(c(1, 0), CmpOp::Ge, 0))
            .unwrap();
        // NULL row dropped even though the comparison is `>= 0`.
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn range_filter_is_inclusive() {
        let db = db3();
        let mut rs = RowSet::base(&db, TableId(0)).unwrap();
        rs.filter(&db, &Predicate::range(c(0, 0), 2, 3)).unwrap();
        assert_eq!(rs.rows_of(TableId(0)).unwrap(), &[1, 2]);
    }

    #[test]
    fn hash_join_matches_expected_pairs() {
        let db = db3();
        // r.x = s.y: x=[10,10,20,30], y=[10,20,20,NULL,40]
        // matches: (r0,s0),(r1,s0),(r2,s1),(r2,s2)
        let rs = execute_connected(
            &db,
            &[TableId(0), TableId(1)],
            &[Predicate::join(c(0, 1), c(1, 0))],
        )
        .unwrap();
        assert_eq!(rs.len(), 4);
        let mut pairs: Vec<(u32, u32)> = rs
            .rows_of(TableId(0))
            .unwrap()
            .iter()
            .zip(rs.rows_of(TableId(1)).unwrap())
            .map(|(&a, &b)| (a, b))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn three_way_join_with_filter() {
        let db = db3();
        // r ⋈ s on x=y, s ⋈ t on b=z, filter r.a <= 2.
        let preds = vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::join(c(1, 1), c(2, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 2),
        ];
        let rs = execute_connected(&db, &[TableId(0), TableId(1), TableId(2)], &preds).unwrap();
        // r rows {0,1} join s0 (y=10,b=100); s.b=100 joins t rows {0,1}.
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.tables(), &[TableId(0), TableId(1), TableId(2)]);
    }

    #[test]
    fn disconnected_execution_errors_but_execute_multiplies() {
        let db = db3();
        let tables = [TableId(0), TableId(2)];
        let err = execute_connected(&db, &tables, &[]).unwrap_err();
        assert!(matches!(err, EngineError::CrossProductTooLarge { .. }));
        assert_eq!(execute(&db, &tables, &[]).unwrap(), 12);
        // One filter on r only: still disconnected from t.
        let preds = [Predicate::filter(c(0, 0), CmpOp::Le, 2)];
        assert_eq!(execute(&db, &tables, &preds).unwrap(), 6);
    }

    #[test]
    fn components_split_by_join_graph() {
        let tables = [TableId(0), TableId(1), TableId(2)];
        let preds = vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(2, 0), CmpOp::Eq, 100),
        ];
        let comps = components(&tables, &preds);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].0, vec![TableId(0), TableId(1)]);
        assert_eq!(comps[0].1.len(), 1);
        assert_eq!(comps[1].0, vec![TableId(2)]);
        assert_eq!(comps[1].1.len(), 1);
    }

    #[test]
    fn residual_join_in_cycle() {
        // r ⋈ s on x=y AND a=b would be a cycle of multiplicity 2 between
        // the same tables; the second predicate must be applied as residual.
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2])
                .column("x", vec![7, 7])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("b", vec![1, 9])
                .column("y", vec![7, 7])
                .build()
                .unwrap(),
        );
        let preds = vec![
            Predicate::join(c(0, 1), c(1, 1)),
            Predicate::join(c(0, 0), c(1, 0)),
        ];
        let rs = execute_connected(&db, &[TableId(0), TableId(1)], &preds).unwrap();
        assert_eq!(rs.len(), 1); // only (a=1, b=1) survives
    }

    #[test]
    fn gather_preserves_order_and_nulls() {
        let db = db3();
        let rs = execute_connected(
            &db,
            &[TableId(0), TableId(1)],
            &[Predicate::join(c(0, 1), c(1, 0))],
        )
        .unwrap();
        let col = rs.gather(&db, c(1, 1)).unwrap();
        assert_eq!(col.len(), rs.len());
        assert_eq!(col.null_count(), 0);
    }

    #[test]
    fn execute_multiplies_multiple_join_components() {
        // Two independent joined pairs: (r ⋈ s) × (t filtered) — execute()
        // must multiply component cardinalities without materializing the
        // product.
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("x", vec![1, 2, 2])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![2, 2, 3])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("t")
                .column("z", vec![5, 6, 7, 8])
                .build()
                .unwrap(),
        );
        let preds = vec![
            Predicate::join(c(0, 0), c(1, 0)),
            Predicate::range(c(2, 0), 6, 7),
        ];
        let tables = [TableId(0), TableId(1), TableId(2)];
        // join: x=2 twice × y=2 twice = 4; filter keeps 2 of t → 8.
        assert_eq!(execute(&db, &tables, &preds).unwrap(), 8);
    }

    #[test]
    fn join_keys_with_nulls_never_match() {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .nullable_column("x", vec![Some(1), None, Some(2)])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .nullable_column("y", vec![None, Some(1), Some(1)])
                .build()
                .unwrap(),
        );
        let rs = execute_connected(
            &db,
            &[TableId(0), TableId(1)],
            &[Predicate::join(c(0, 0), c(1, 0))],
        )
        .unwrap();
        // Only r0 (x=1) matches s1 and s2; NULLs on either side drop out.
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn filter_after_join_on_carried_table() {
        let db = db3();
        // Join r ⋈ s, then filter s.b — the filter applies to the joined
        // row set, exercising gather over a non-first table slot.
        let preds = vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(1, 1), CmpOp::Le, 200),
        ];
        let rs = execute_connected(&db, &[TableId(0), TableId(1)], &preds).unwrap();
        // Matches: (r0,s0),(r1,s0) have b=100; (r2,s1) b=200; (r2,s2) b=300.
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn empty_result_propagates() {
        let db = db3();
        let preds = vec![
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Gt, 100),
        ];
        let rs = execute_connected(&db, &[TableId(0), TableId(1)], &preds).unwrap();
        assert!(rs.is_empty());
        assert_eq!(execute(&db, &[TableId(0), TableId(1)], &preds).unwrap(), 0);
    }
}

//! # sqe-engine — in-memory relational substrate
//!
//! A small, self-contained column-store execution engine used as the
//! substrate for the conditional-selectivity framework of Bruno & Chaudhuri
//! (SIGMOD 2004). It provides:
//!
//! * a catalog of tables with typed (`i64`, nullable) columns,
//! * select-project-join (SPJ) predicates and queries in the paper's
//!   canonical form `σ_{p1 ∧ … ∧ pk}(R1 × … × Rn)`,
//! * a hash-join based executor that materializes query results as row-id
//!   sets (used both to compute *true* cardinalities and to build SITs over
//!   query expressions),
//! * a brute-force cross-product evaluator used as a test oracle, and
//! * a memoized [`oracle::CardinalityOracle`] that returns the exact
//!   cardinality/selectivity of *any* predicate subset of a query, exploiting
//!   the separable-decomposition property (Property 2 in the paper) so that
//!   disconnected predicate sets never materialize a cross product.
//!
//! Values are `i64` with SQL-ish NULL semantics: any comparison involving
//! NULL is false, so NULLs never satisfy filters and never join (this is how
//! the paper models "dangling" foreign keys that break referential
//! integrity).

pub mod brute;
pub mod column;
pub mod database;
pub mod delta;
pub mod dsu;
pub mod error;
pub mod exec;
pub mod oracle;
pub mod parser;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod table;

pub use column::Column;
pub use database::Database;
pub use delta::{apply_batch, ColumnChanges, DeltaBatch, DeltaLog, RowOp, TableDelta};
pub use error::{EngineError, Result};
pub use exec::{execute, execute_connected, RowSet};
pub use oracle::CardinalityOracle;
pub use parser::{parse_query, ParseError};
pub use predicate::{CmpOp, ColRef, Predicate};
pub use query::SpjQuery;
pub use schema::{Catalog, ColumnSchema, TableId, TableSchema};
pub use table::Table;

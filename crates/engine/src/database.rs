//! Database: a catalog plus table storage.

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::predicate::ColRef;
use crate::schema::{Catalog, TableId, TableSchema};
use crate::table::Table;

/// An in-memory database: schemas plus table data, addressed by [`TableId`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, returning its id.
    pub fn add_table(&mut self, table: Table) -> TableId {
        let id = self.catalog.add(table.schema().clone());
        self.tables.push(table);
        id
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Replaces a table's data in place, keeping its id. The new table must
    /// have the same schema name and arity (the catalog entry is reused) —
    /// this is the commit step of [`crate::delta::apply_batch`].
    pub fn replace_table(&mut self, id: TableId, table: Table) -> Result<()> {
        let schema = self.schema(id)?;
        if schema.name != table.schema().name || schema.arity() != table.schema().arity() {
            return Err(EngineError::RaggedTable {
                table: table.schema().name.clone(),
            });
        }
        self.tables[id.0 as usize] = table;
        Ok(())
    }

    /// Table data by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(id.0 as usize)
            .ok_or(EngineError::UnknownTable(id))
    }

    /// Table data by name.
    pub fn table_by_name(&self, name: &str) -> Option<(&Table, TableId)> {
        let id = self.catalog.table_id(name)?;
        Some((&self.tables[id.0 as usize], id))
    }

    /// Schema of a table.
    pub fn schema(&self, id: TableId) -> Result<&TableSchema> {
        self.catalog.schema(id).ok_or(EngineError::UnknownTable(id))
    }

    /// The column a [`ColRef`] points at.
    pub fn column(&self, col: ColRef) -> Result<&Column> {
        let table = self.table(col.table)?;
        table.column(col.column).ok_or(EngineError::UnknownColumn {
            table: col.table,
            column: col.column,
        })
    }

    /// Resolves a `"table.column"` string to a [`ColRef`].
    pub fn col(&self, qualified: &str) -> Option<ColRef> {
        let (t, c) = qualified.split_once('.')?;
        let id = self.catalog.table_id(t)?;
        let column = self.catalog.schema(id)?.column_index(c)?;
        Some(ColRef { table: id, column })
    }

    /// Number of rows in the table.
    pub fn row_count(&self, id: TableId) -> Result<usize> {
        Ok(self.table(id)?.row_count())
    }

    /// Cardinality of the cartesian product of a set of tables, as `u128`
    /// (the paper's `|R1 × … × Rn|` denominator).
    pub fn cross_product_size(&self, tables: &[TableId]) -> Result<u128> {
        let mut prod: u128 = 1;
        for &t in tables {
            prod = prod.saturating_mul(self.row_count(t)? as u128);
        }
        Ok(prod)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3])
                .column("x", vec![10, 20, 30])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .column("y", vec![10, 10])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn lookup_by_id_and_name() {
        let db = sample_db();
        assert_eq!(db.table_count(), 2);
        let (t, id) = db.table_by_name("s").unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(id, TableId(1));
        assert!(db.table(TableId(9)).is_err());
    }

    #[test]
    fn qualified_column_resolution() {
        let db = sample_db();
        let c = db.col("r.x").unwrap();
        assert_eq!(c.table, TableId(0));
        assert_eq!(c.column, 1);
        assert!(db.col("r.nope").is_none());
        assert!(db.col("nope.x").is_none());
        assert!(db.col("malformed").is_none());
        assert_eq!(db.column(c).unwrap().get(1), Some(20));
    }

    #[test]
    fn cross_product_size_multiplies() {
        let db = sample_db();
        let n = db.cross_product_size(&[TableId(0), TableId(1)]).unwrap();
        assert_eq!(n, 6);
        assert_eq!(db.cross_product_size(&[]).unwrap(), 1);
    }

    #[test]
    fn unknown_column_is_reported() {
        let db = sample_db();
        let bad = ColRef {
            table: TableId(0),
            column: 42,
        };
        assert!(matches!(
            db.column(bad),
            Err(EngineError::UnknownColumn { .. })
        ));
    }
}

//! Physical table storage.

use crate::column::Column;
use crate::error::{EngineError, Result};
use crate::schema::TableSchema;

/// A physical table: a schema plus one [`Column`] per schema column, all of
/// equal length.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Creates a table, validating that all columns have the same length and
    /// that the column count matches the schema arity.
    pub fn new(schema: TableSchema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(EngineError::RaggedTable {
                table: schema.name.clone(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(EngineError::RaggedTable {
                table: schema.name.clone(),
            });
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Column by index.
    pub fn column(&self, idx: u16) -> Option<&Column> {
        self.columns.get(idx as usize)
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.column_index(name).and_then(|i| self.column(i))
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Replaces the column at `idx` with `column` (same length required).
    /// Used by generators that post-process a built table (e.g. NULLing out
    /// dangling foreign keys).
    pub fn replace_column(&mut self, idx: u16, column: Column) -> bool {
        if column.len() != self.rows {
            return false;
        }
        match self.columns.get_mut(idx as usize) {
            Some(slot) => {
                *slot = column;
                true
            }
            None => false,
        }
    }
}

/// Convenience builder for constructing small tables in tests and examples.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    names: Vec<String>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Starts a builder for a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            names: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Adds a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, values: Vec<i64>) -> Self {
        self.names.push(name.into());
        self.columns.push(Column::from_values(values));
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        self.names.push(name.into());
        self.columns.push(Column::from_options(values));
        self
    }

    /// Finalizes the table.
    pub fn build(self) -> Result<Table> {
        let refs: Vec<&str> = self.names.iter().map(String::as_str).collect();
        Table::new(TableSchema::new(self.name, &refs), self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_consistent_table() {
        let t = TableBuilder::new("orders")
            .column("o_id", vec![1, 2, 3])
            .nullable_column("cust", vec![Some(10), None, Some(30)])
            .build()
            .unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_by_name("cust").unwrap().null_count(), 1);
        assert_eq!(t.column(0).unwrap().get(2), Some(3));
        assert!(t.column(9).is_none());
    }

    #[test]
    fn ragged_columns_are_rejected() {
        let err = TableBuilder::new("bad")
            .column("a", vec![1, 2])
            .column("b", vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::RaggedTable { .. }));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let schema = TableSchema::new("t", &["a", "b"]);
        let err = Table::new(schema, vec![Column::from_values(vec![1])]).unwrap_err();
        assert!(matches!(err, EngineError::RaggedTable { .. }));
    }

    #[test]
    fn replace_column_checks_length_and_index() {
        let mut t = TableBuilder::new("t")
            .column("a", vec![1, 2, 3])
            .build()
            .unwrap();
        assert!(t.replace_column(0, Column::from_values(vec![7, 8, 9])));
        assert_eq!(t.column(0).unwrap().get(0), Some(7));
        assert!(!t.replace_column(0, Column::from_values(vec![1])));
        assert!(!t.replace_column(5, Column::from_values(vec![1, 2, 3])));
    }

    #[test]
    fn empty_table_is_valid() {
        let t = TableBuilder::new("empty")
            .column("a", vec![])
            .build()
            .unwrap();
        assert_eq!(t.row_count(), 0);
    }
}

//! Brute-force nested-loop evaluation over the full cartesian product.
//!
//! Only usable on tiny inputs; serves as the correctness oracle for the hash
//! join executor and for the conditional-selectivity properties (atomic and
//! separable decomposition are *exact*, so tests can verify them against
//! brute-forced counts).

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::predicate::Predicate;
use crate::schema::TableId;

/// Default cap on the cross-product size the brute-force evaluator accepts.
pub const DEFAULT_LIMIT: u128 = 20_000_000;

/// Counts the tuples of `R1 × … × Rn` that satisfy every predicate, by full
/// enumeration. Fails when the cross product exceeds `limit` rows.
pub fn count_brute_force(
    db: &Database,
    tables: &[TableId],
    preds: &[Predicate],
    limit: u128,
) -> Result<u64> {
    if tables.is_empty() {
        return Err(EngineError::EmptyTableSet);
    }
    let mut sorted: Vec<TableId> = tables.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let total = db.cross_product_size(&sorted)?;
    if total > limit {
        return Err(EngineError::CrossProductTooLarge {
            estimated_rows: total,
            limit,
        });
    }
    let sizes: Vec<usize> = sorted
        .iter()
        .map(|&t| db.row_count(t))
        .collect::<Result<_>>()?;
    if sizes.contains(&0) {
        return Ok(0);
    }

    // Resolve predicate columns to (table slot, column) once.
    struct Resolved {
        pred: Predicate,
        slots: Vec<usize>,
    }
    let slot_of = |t: TableId| {
        sorted
            .binary_search(&t)
            .map_err(|_| EngineError::PredicateOutOfScope { table: t })
    };
    let mut resolved = Vec::with_capacity(preds.len());
    for p in preds {
        let slots: Vec<usize> = match p {
            Predicate::Filter { col, .. } | Predicate::Range { col, .. } => {
                vec![slot_of(col.table)?]
            }
            Predicate::Join { left, right } => {
                vec![slot_of(left.table)?, slot_of(right.table)?]
            }
        };
        resolved.push(Resolved { pred: *p, slots });
    }

    let mut idx = vec![0usize; sorted.len()];
    let mut count = 0u64;
    'outer: loop {
        let ok = resolved.iter().all(|r| match &r.pred {
            Predicate::Filter { col, op, value } => db
                .column(*col)
                .ok()
                .and_then(|c| c.get(idx[r.slots[0]]))
                .is_some_and(|v| op.eval(v, *value)),
            Predicate::Range { col, lo, hi } => db
                .column(*col)
                .ok()
                .and_then(|c| c.get(idx[r.slots[0]]))
                .is_some_and(|v| *lo <= v && v <= *hi),
            Predicate::Join { left, right } => {
                let lv = db.column(*left).ok().and_then(|c| c.get(idx[r.slots[0]]));
                let rv = db.column(*right).ok().and_then(|c| c.get(idx[r.slots[1]]));
                matches!((lv, rv), (Some(a), Some(b)) if a == b)
            }
        });
        if ok {
            count += 1;
        }
        // Odometer increment.
        for slot in (0..idx.len()).rev() {
            idx[slot] += 1;
            if idx[slot] < sizes[slot] {
                continue 'outer;
            }
            idx[slot] = 0;
        }
        break;
    }
    Ok(count)
}

/// Exact selectivity `Sel_R(P)` by brute force.
pub fn selectivity_brute_force(
    db: &Database,
    tables: &[TableId],
    preds: &[Predicate],
    limit: u128,
) -> Result<f64> {
    let total = db.cross_product_size(tables)?;
    if total == 0 {
        return Ok(0.0);
    }
    let count = count_brute_force(db, tables, preds, limit)?;
    Ok(count as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::predicate::{CmpOp, ColRef};
    use crate::table::TableBuilder;

    fn c(t: u32, col: u16) -> ColRef {
        ColRef::new(TableId(t), col)
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableBuilder::new("r")
                .column("a", vec![1, 2, 3, 4, 5])
                .column("x", vec![1, 1, 2, 2, 3])
                .build()
                .unwrap(),
        );
        db.add_table(
            TableBuilder::new("s")
                .nullable_column("y", vec![Some(1), Some(2), None, Some(2)])
                .build()
                .unwrap(),
        );
        db
    }

    #[test]
    fn brute_force_counts_join() {
        let db = db();
        let preds = [Predicate::join(c(0, 1), c(1, 0))];
        let n = count_brute_force(&db, &[TableId(0), TableId(1)], &preds, DEFAULT_LIMIT).unwrap();
        // x=[1,1,2,2,3], y=[1,2,NULL,2]: matches 1×1(×2 rows) + 2×2(2 rows × 2) = 2 + 4
        assert_eq!(n, 6);
    }

    #[test]
    fn brute_force_agrees_with_executor() {
        let db = db();
        let preds = [
            Predicate::join(c(0, 1), c(1, 0)),
            Predicate::filter(c(0, 0), CmpOp::Le, 3),
        ];
        let tables = [TableId(0), TableId(1)];
        let bf = count_brute_force(&db, &tables, &preds, DEFAULT_LIMIT).unwrap();
        let ex = execute(&db, &tables, &preds).unwrap();
        assert_eq!(bf as u128, ex);
    }

    #[test]
    fn selectivity_matches_fraction() {
        let db = db();
        let preds = [Predicate::filter(c(0, 0), CmpOp::Le, 2)];
        let s = selectivity_brute_force(&db, &[TableId(0)], &preds, DEFAULT_LIMIT).unwrap();
        assert!((s - 0.4).abs() < 1e-12);
    }

    #[test]
    fn limit_is_enforced() {
        let db = db();
        let err = count_brute_force(&db, &[TableId(0), TableId(1)], &[], 3).unwrap_err();
        assert!(matches!(err, EngineError::CrossProductTooLarge { .. }));
    }

    #[test]
    fn no_predicates_counts_cross_product() {
        let db = db();
        let n = count_brute_force(&db, &[TableId(0), TableId(1)], &[], DEFAULT_LIMIT).unwrap();
        assert_eq!(n, 20);
    }
}

//! The `diff` metric of §3.5.
//!
//! `diff_H = ½ · Σ_x |f(R,x)/|R| − f(T′,x)/|T′||` measures how far the
//! distribution of an attribute over a query expression's result (`T′`)
//! deviates from its base-table distribution (`R`). It is the total
//! variation distance between the two (value-level) distributions: 0 when
//! identical, approaching 1 when (nearly) disjoint. The `Diff` error
//! function uses `1 − diff_H` as the "semantic degree of independence" a SIT
//! removes.
//!
//! Two implementations are provided:
//!
//! * [`diff_exact`] computes the metric from raw value slices (we own the
//!   data generator, so exact computation at SIT-build time is cheap);
//! * [`diff_from_histograms`] approximates it from a pair of histograms,
//!   mirroring the paper's suggestion to avoid touching base data (it is
//!   "similar to techniques that approximate joins using histograms").

use std::collections::BTreeMap;

use crate::histogram::{Bucket, Histogram};

/// Exact `diff` between the value multiset of the base column and that of
/// the query-expression result. NULLs are ignored on both sides (a SIT's
/// histogram describes non-NULL values; NULL rows are tracked separately).
/// Returns 0 when either side is empty (no evidence of divergence).
pub fn diff_exact(base: &[i64], expr_result: &[i64]) -> f64 {
    if base.is_empty() || expr_result.is_empty() {
        return 0.0;
    }
    // BTreeMap, not HashMap: the float sum below rounds differently under
    // different iteration orders, and SIT `diff`s must be bit-identical
    // across runs and across threads (parallel pool builds rely on it).
    let mut freq: BTreeMap<i64, (u64, u64)> = BTreeMap::new();
    for &v in base {
        freq.entry(v).or_default().0 += 1;
    }
    for &v in expr_result {
        freq.entry(v).or_default().1 += 1;
    }
    let nb = base.len() as f64;
    let ne = expr_result.len() as f64;
    let sum: f64 = freq
        .values()
        .map(|&(fb, fe)| (fb as f64 / nb - fe as f64 / ne).abs())
        .sum();
    (0.5 * sum).clamp(0.0, 1.0)
}

/// Approximate `diff` from two histograms over the same attribute: the
/// bucket sequences are aligned on the union of their boundaries and the
/// normalized masses compared segment by segment. Exact when both
/// histograms are exact; otherwise accurate to within bucket resolution.
pub fn diff_from_histograms(base: &Histogram, expr: &Histogram) -> f64 {
    let nb = base.valid_rows();
    let ne = expr.valid_rows();
    if nb == 0.0 || ne == 0.0 {
        return 0.0;
    }
    // Collect every boundary of both histograms.
    let mut cuts: Vec<i64> = Vec::new();
    for b in base.buckets().iter().chain(expr.buckets()) {
        cuts.push(b.lo);
        cuts.push(b.hi.saturating_add(1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut sum = 0.0f64;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1] - 1);
        if lo > hi {
            continue;
        }
        let mb = mass_in(base.buckets(), lo, hi) / nb;
        let me = mass_in(expr.buckets(), lo, hi) / ne;
        sum += (mb - me).abs();
    }
    (0.5 * sum).clamp(0.0, 1.0)
}

fn mass_in(buckets: &[Bucket], lo: i64, hi: i64) -> f64 {
    let idx = buckets.partition_point(|b| b.hi < lo);
    match buckets.get(idx) {
        Some(b) if b.lo <= hi => {
            let o_lo = b.lo.max(lo);
            let o_hi = b.hi.min(hi);
            b.freq * ((o_hi - o_lo) as f64 + 1.0) / ((b.hi - b.lo) as f64 + 1.0)
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_exact, build_maxdiff};

    #[test]
    fn identical_distributions_have_zero_diff() {
        let v = vec![1, 2, 2, 3, 3, 3];
        assert_eq!(diff_exact(&v, &v), 0.0);
        // Scaled copies too: the metric compares *normalized* frequencies.
        let doubled: Vec<i64> = v.iter().chain(&v).copied().collect();
        assert!(diff_exact(&v, &doubled) < 1e-12);
    }

    #[test]
    fn disjoint_supports_have_diff_one() {
        let a = vec![1, 2, 3];
        let b = vec![10, 11, 12];
        assert!((diff_exact(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_shift_is_strictly_between() {
        let a = vec![1, 1, 2, 2];
        let b = vec![1, 2, 2, 2]; // mass moved from value 1 to value 2
        let d = diff_exact(&a, &b);
        assert!(d > 0.0 && d < 1.0);
        assert!((d - 0.25).abs() < 1e-12); // ½(|0.5−0.25| + |0.5−0.75|)
    }

    #[test]
    fn empty_sides_report_zero() {
        assert_eq!(diff_exact(&[], &[1, 2]), 0.0);
        assert_eq!(diff_exact(&[1, 2], &[]), 0.0);
        assert_eq!(
            diff_from_histograms(&Histogram::empty(), &Histogram::empty()),
            0.0
        );
    }

    #[test]
    fn histogram_diff_matches_exact_on_exact_histograms() {
        let a = vec![1, 1, 2, 3, 3, 3, 7];
        let b = vec![1, 3, 3, 7, 7, 7, 9];
        let want = diff_exact(&a, &b);
        let got = diff_from_histograms(&build_exact(&a, 0), &build_exact(&b, 0));
        assert!((want - got).abs() < 1e-12, "want {want}, got {got}");
    }

    #[test]
    fn histogram_diff_approximates_exact_on_bucketed_histograms() {
        // Skewed vs uniform over the same domain.
        let uniform: Vec<i64> = (0..10_000).map(|i| i % 500).collect();
        let skewed: Vec<i64> = (0..10_000)
            .map(|i| if i % 10 < 7 { i % 50 } else { i % 500 })
            .collect();
        let want = diff_exact(&uniform, &skewed);
        let got = diff_from_histograms(
            &build_maxdiff(&uniform, 0, 100),
            &build_maxdiff(&skewed, 0, 100),
        );
        assert!(
            (want - got).abs() < 0.1,
            "histogram approximation too coarse: exact {want}, approx {got}"
        );
    }

    #[test]
    fn diff_is_symmetric() {
        let a = vec![1, 2, 2, 9];
        let b = vec![2, 9, 9, 9];
        assert!((diff_exact(&a, &b) - diff_exact(&b, &a)).abs() < 1e-12);
        let (ha, hb) = (build_exact(&a, 0), build_exact(&b, 0));
        assert!((diff_from_histograms(&ha, &hb) - diff_from_histograms(&hb, &ha)).abs() < 1e-12);
    }

    #[test]
    fn diff_stays_in_unit_interval() {
        // A handful of adversarial pairs.
        let cases: Vec<(Vec<i64>, Vec<i64>)> = vec![
            (vec![i64::MIN, i64::MAX], vec![0]),
            (vec![5; 100], vec![5]),
            ((0..1000).collect(), (500..1500).collect()),
        ];
        for (a, b) in cases {
            let d = diff_exact(&a, &b);
            assert!((0.0..=1.0).contains(&d), "diff {d} out of range");
        }
    }
}

//! Histogram construction: maxDiff, equi-depth, equi-width, exact.
//!
//! All builders take a slice of non-NULL values (order irrelevant) plus the
//! number of NULL rows, and a bucket budget. The paper's SITs use
//! **maxDiff** with at most 200 buckets (§5); the other builders exist as
//! baselines and for ablation benchmarks.

use crate::histogram::{Bucket, Histogram};

/// Which construction algorithm to use — for ablation experiments against
/// the paper's choice (maxDiff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BuilderKind {
    /// maxDiff(V,A) — the paper's choice for SITs.
    #[default]
    MaxDiff,
    /// Equi-depth (balanced bucket mass).
    EquiDepth,
    /// Equi-width (balanced bucket value ranges).
    EquiWidth,
    /// One bucket per distinct value (unbounded; reference only).
    Exact,
    /// A uniform reservoir sample of `max_buckets` values, materialized as
    /// a scaled exact histogram — the paper's "samples" alternative to
    /// histogram SITs.
    Sampled,
    /// A Haar wavelet synopsis with `max_buckets` retained coefficients,
    /// materialized as a histogram — the paper's "wavelets" alternative.
    Wavelet,
}

impl BuilderKind {
    /// Builds a histogram with this algorithm.
    pub fn build(self, values: &[i64], null_count: usize, max_buckets: usize) -> Histogram {
        match self {
            BuilderKind::MaxDiff => build_maxdiff(values, null_count, max_buckets),
            BuilderKind::EquiDepth => build_equi_depth(values, null_count, max_buckets),
            BuilderKind::EquiWidth => build_equi_width(values, null_count, max_buckets),
            BuilderKind::Exact => build_exact(values, null_count),
            BuilderKind::Sampled => {
                crate::sample::Sample::build(values, null_count, max_buckets, 0x5A4D).to_histogram()
            }
            BuilderKind::Wavelet => {
                crate::wavelet::WaveletSynopsis::build(values, null_count, max_buckets)
                    .to_histogram()
            }
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BuilderKind::MaxDiff => "maxdiff",
            BuilderKind::EquiDepth => "equi-depth",
            BuilderKind::EquiWidth => "equi-width",
            BuilderKind::Exact => "exact",
            BuilderKind::Sampled => "sampled",
            BuilderKind::Wavelet => "wavelet",
        }
    }
}

/// `(value, frequency)` pairs sorted by value.
fn value_frequencies(values: &[i64]) -> Vec<(i64, u64)> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let mut out: Vec<(i64, u64)> = Vec::new();
    for v in sorted {
        match out.last_mut() {
            Some((last, f)) if *last == v => *f += 1,
            _ => out.push((v, 1)),
        }
    }
    out
}

/// Builds buckets from a partition of the sorted distinct-value list.
/// `cut_after[i]` true means a bucket boundary falls after distinct value
/// index `i`.
fn buckets_from_cuts(freqs: &[(i64, u64)], cut_after: &[bool]) -> Vec<Bucket> {
    let mut buckets = Vec::new();
    let mut start = 0usize;
    for i in 0..freqs.len() {
        let is_last = i + 1 == freqs.len();
        if is_last || cut_after[i] {
            let slice = &freqs[start..=i];
            buckets.push(Bucket {
                lo: slice[0].0,
                hi: slice[slice.len() - 1].0,
                freq: slice.iter().map(|&(_, f)| f as f64).sum(),
                distinct: slice.len() as f64,
            });
            start = i + 1;
        }
    }
    buckets
}

/// Builds an *exact* histogram: one bucket per distinct value. Unbounded
/// size — use only for small domains or as a reference in tests.
pub fn build_exact(values: &[i64], null_count: usize) -> Histogram {
    let freqs = value_frequencies(values);
    let buckets = freqs
        .iter()
        .map(|&(v, f)| Bucket {
            lo: v,
            hi: v,
            freq: f as f64,
            distinct: 1.0,
        })
        .collect();
    Histogram::new(buckets, null_count as f64)
}

/// Builds a **maxDiff(V,A)** histogram (Poosala et al.): bucket boundaries
/// are placed at the `max_buckets − 1` largest differences in *area*
/// (frequency × spread) between adjacent distinct values, which isolates
/// skewed values into their own buckets.
pub fn build_maxdiff(values: &[i64], null_count: usize, max_buckets: usize) -> Histogram {
    let freqs = value_frequencies(values);
    if freqs.is_empty() {
        return Histogram::new(Vec::new(), null_count as f64);
    }
    if freqs.len() <= max_buckets.max(1) {
        return build_exact(values, null_count);
    }
    // Area of distinct value i: freq_i × spread_i, where spread is the gap
    // to the next distinct value (1 for the last).
    let mut diffs: Vec<(f64, usize)> = Vec::with_capacity(freqs.len() - 1);
    let area = |i: usize| -> f64 {
        let spread = if i + 1 < freqs.len() {
            (freqs[i + 1].0 as i128 - freqs[i].0 as i128) as f64
        } else {
            1.0
        };
        freqs[i].1 as f64 * spread
    };
    for i in 0..freqs.len() - 1 {
        diffs.push(((area(i) - area(i + 1)).abs(), i));
    }
    // Pick the (max_buckets − 1) largest differences as boundaries.
    let n_cuts = max_buckets.max(1) - 1;
    diffs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut cut_after = vec![false; freqs.len()];
    for &(_, i) in diffs.iter().take(n_cuts) {
        cut_after[i] = true;
    }
    Histogram::new(buckets_from_cuts(&freqs, &cut_after), null_count as f64)
}

/// Builds an equi-depth histogram: each bucket holds roughly `rows /
/// max_buckets` rows (boundaries never split one distinct value across
/// buckets).
pub fn build_equi_depth(values: &[i64], null_count: usize, max_buckets: usize) -> Histogram {
    let freqs = value_frequencies(values);
    if freqs.is_empty() {
        return Histogram::new(Vec::new(), null_count as f64);
    }
    if freqs.len() <= max_buckets.max(1) {
        return build_exact(values, null_count);
    }
    let total: u64 = freqs.iter().map(|&(_, f)| f).sum();
    let target = (total as f64 / max_buckets.max(1) as f64).max(1.0);
    let mut cut_after = vec![false; freqs.len()];
    let mut acc = 0.0f64;
    let mut cuts = 0usize;
    for (i, &(_, f)) in freqs.iter().enumerate().take(freqs.len() - 1) {
        acc += f as f64;
        if acc >= target && cuts + 1 < max_buckets {
            cut_after[i] = true;
            acc = 0.0;
            cuts += 1;
        }
    }
    Histogram::new(buckets_from_cuts(&freqs, &cut_after), null_count as f64)
}

/// Builds an equi-width histogram: the value domain is split into
/// `max_buckets` equal-width ranges.
pub fn build_equi_width(values: &[i64], null_count: usize, max_buckets: usize) -> Histogram {
    let freqs = value_frequencies(values);
    if freqs.is_empty() {
        return Histogram::new(Vec::new(), null_count as f64);
    }
    if freqs.len() <= max_buckets.max(1) {
        return build_exact(values, null_count);
    }
    let lo = freqs[0].0;
    let hi = freqs[freqs.len() - 1].0;
    let span = (hi as i128 - lo as i128) as u128 + 1;
    let width = (span.div_ceil(max_buckets.max(1) as u128)).max(1) as i128;
    let mut cut_after = vec![false; freqs.len()];
    for i in 0..freqs.len() - 1 {
        // Cut when the next distinct value falls into a different stripe.
        let stripe = |v: i64| (v as i128 - lo as i128) / width;
        if stripe(freqs[i].0) != stripe(freqs[i + 1].0) {
            cut_after[i] = true;
        }
    }
    Histogram::new(buckets_from_cuts(&freqs, &cut_after), null_count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_freq(h: &Histogram) -> f64 {
        h.valid_rows()
    }

    #[test]
    fn exact_histogram_reproduces_counts() {
        let vals = vec![5, 1, 5, 5, 3, 1];
        let h = build_exact(&vals, 2);
        assert_eq!(h.buckets().len(), 3);
        assert_eq!(total_freq(&h), 6.0);
        assert_eq!(h.null_count(), 2.0);
        assert!((h.eq_rows(5) - 3.0).abs() < 1e-12);
        assert!((h.eq_rows(1) - 2.0).abs() < 1e-12);
        assert!((h.eq_rows(3) - 1.0).abs() < 1e-12);
        assert_eq!(h.eq_rows(2), 0.0);
    }

    #[test]
    fn small_domains_stay_exact_in_all_builders() {
        let vals = vec![1, 2, 2, 3];
        for build in [build_maxdiff, build_equi_depth, build_equi_width] {
            let h = build(&vals, 0, 10);
            assert_eq!(h.buckets().len(), 3);
            assert!((h.eq_rows(2) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_conserved_by_every_builder() {
        let vals: Vec<i64> = (0..1000).map(|i| (i * i) % 577).collect();
        for build in [build_maxdiff, build_equi_depth, build_equi_width] {
            let h = build(&vals, 17, 20);
            assert!((total_freq(&h) - 1000.0).abs() < 1e-6);
            assert_eq!(h.null_count(), 17.0);
            assert!(h.buckets().len() <= 20 + 1);
        }
    }

    #[test]
    fn bucket_budget_is_respected() {
        let vals: Vec<i64> = (0..10_000).collect();
        for build in [build_maxdiff, build_equi_depth] {
            let h = build(&vals, 0, 50);
            assert!(h.buckets().len() <= 50, "got {}", h.buckets().len());
            assert!(h.buckets().len() >= 45);
        }
        let h = build_equi_width(&vals, 0, 50);
        assert!(h.buckets().len() <= 51);
    }

    #[test]
    fn maxdiff_isolates_heavy_hitters() {
        // One enormous spike amid uniform noise: maxDiff should put the
        // spike value in a (near-)singleton bucket, making its equality
        // estimate near-exact.
        let mut vals: Vec<i64> = (0..1000).map(|i| i % 100).collect(); // 10 each
        vals.extend(std::iter::repeat_n(50i64, 5000)); // value 50: 5010 rows
        let h = build_maxdiff(&vals, 0, 20);
        let est = h.eq_rows(50);
        assert!(
            (est - 5010.0).abs() / 5010.0 < 0.2,
            "spike estimate {est} too far from 5010"
        );
        // Equi-width smears the spike across its stripe: strictly worse.
        let hw = build_equi_width(&vals, 0, 20);
        let est_w = hw.eq_rows(50);
        assert!(
            (est - 5010.0).abs() <= (est_w - 5010.0).abs() + 1e-9,
            "maxdiff ({est}) should beat equi-width ({est_w})"
        );
    }

    #[test]
    fn equi_depth_balances_bucket_mass() {
        let vals: Vec<i64> = (0..10_000).map(|i| i % 1000).collect();
        let h = build_equi_depth(&vals, 0, 10);
        let masses: Vec<f64> = h.buckets().iter().map(|b| b.freq).collect();
        let avg = 10_000.0 / masses.len() as f64;
        for m in &masses {
            assert!((m - avg).abs() / avg < 0.5, "unbalanced bucket {m}");
        }
    }

    #[test]
    fn empty_input_yields_empty_histogram() {
        for build in [build_maxdiff, build_equi_depth, build_equi_width] {
            let h = build(&[], 3, 10);
            assert!(h.buckets().is_empty());
            assert_eq!(h.null_count(), 3.0);
            assert_eq!(h.range_selectivity(0, 100), 0.0);
        }
    }

    #[test]
    fn extreme_domains_do_not_overflow() {
        // Regression: widths/spreads on near-full-i64 domains used to
        // overflow the subtraction in debug builds.
        let vals = vec![i64::MIN + 1, 0, i64::MAX - 1];
        for build in [build_maxdiff, build_equi_depth, build_equi_width] {
            let h = build(&vals, 0, 2);
            assert!((h.valid_rows() - 3.0).abs() < 1e-9);
        }
        let w = crate::wavelet::WaveletSynopsis::build(&vals, 0, 100_000);
        assert!((w.range_rows(i64::MIN + 1, i64::MAX - 1) - 3.0).abs() < 1e-6);
        let g = crate::hist2d::Hist2d::build(&[(i64::MIN + 1, i64::MAX - 1), (0, 0)], 0, 2, 2);
        assert!((g.valid_rows() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn negative_values_are_handled() {
        let vals = vec![-100, -50, -50, 0, 25, 25, 25];
        let h = build_maxdiff(&vals, 0, 3);
        assert!((total_freq(&h) - 7.0).abs() < 1e-12);
        assert_eq!(h.bounds().unwrap().0, -100);
        assert!(h.range_selectivity(-60, -40) > 0.0);
    }

    #[test]
    fn range_estimates_exact_on_exact_histogram() {
        let vals = vec![1, 2, 2, 3, 3, 3, 10];
        let h = build_exact(&vals, 0);
        assert!((h.range_rows(2, 3) - 5.0).abs() < 1e-12);
        assert!((h.range_rows(4, 9) - 0.0).abs() < 1e-12);
        assert!((h.range_rows(1, 10) - 7.0).abs() < 1e-12);
    }
}

//! Haar-wavelet synopses.
//!
//! The second "other statistical estimator" the paper mentions alongside
//! samples: a thresholded **Haar wavelet decomposition** of the cumulative
//! frequency function. The synopsis keeps the `b` largest (normalized)
//! coefficients; range-count queries are answered by reconstructing the
//! cumulative counts at the two range endpoints — `O(log n)` per endpoint,
//! touching only retained coefficients.
//!
//! Like [`crate::sample::Sample`], a synopsis converts to an ordinary
//! [`Histogram`] so it can flow through the SIT machinery for ablation
//! experiments.

use crate::histogram::{Bucket, Histogram};

/// A thresholded Haar wavelet synopsis of a value distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletSynopsis {
    /// Retained coefficients: `(index, value)` in the standard Haar basis
    /// over the frequency vector; index 0 is the overall average.
    coefficients: Vec<(u32, f64)>,
    /// Length of the (padded) frequency vector — a power of two.
    n: u32,
    /// Smallest domain value (frequency vector position 0).
    domain_lo: i64,
    /// Width of each frequency-vector cell (domain compression for huge
    /// domains).
    cell_width: i64,
    population: f64,
    null_count: f64,
}

impl WaveletSynopsis {
    /// Builds a synopsis over the non-NULL `values`, retaining at most
    /// `budget` coefficients (largest by normalized magnitude, the standard
    /// deterministic thresholding).
    pub fn build(values: &[i64], null_count: usize, budget: usize) -> Self {
        if values.is_empty() {
            return WaveletSynopsis {
                coefficients: Vec::new(),
                n: 1,
                domain_lo: 0,
                cell_width: 1,
                population: 0.0,
                null_count: null_count as f64,
            };
        }
        let lo = *values.iter().min().expect("non-empty");
        let hi = *values.iter().max().expect("non-empty");
        // Frequency vector over at most 4096 cells (wavelets need a dyadic
        // domain; wide domains are compressed into equal-width cells).
        const MAX_CELLS: u128 = 4096;
        let span = (hi as i128 - lo as i128) as u128 + 1;
        let cell_width = span.div_ceil(MAX_CELLS).max(1) as i64;
        let cells = span.div_ceil(cell_width as u128) as u32;
        let n = cells.next_power_of_two().max(1);

        let mut freq = vec![0.0f64; n as usize];
        for &v in values {
            freq[((v as i128 - lo as i128) / cell_width as i128) as usize] += 1.0;
        }

        // Standard Haar decomposition with per-level normalization weights
        // so thresholding keeps the coefficients that matter most in L2.
        let mut data = freq;
        let mut coeffs = vec![0.0f64; n as usize];
        let mut len = n as usize;
        while len > 1 {
            let half = len / 2;
            let mut avg = vec![0.0; half];
            for i in 0..half {
                avg[i] = (data[2 * i] + data[2 * i + 1]) / 2.0;
                coeffs[half + i] = (data[2 * i] - data[2 * i + 1]) / 2.0;
            }
            data[..half].copy_from_slice(&avg);
            len = half;
        }
        coeffs[0] = data[0];

        // Threshold: keep `budget` coefficients with largest normalized
        // magnitude (|c| · sqrt(support length)). The average (index 0) is
        // always kept — dropping it loses the total mass.
        let mut ranked: Vec<(u32, f64)> = coeffs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0.0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        let weight = |i: u32| -> f64 {
            if i == 0 {
                f64::INFINITY // always keep the average
            } else {
                let level_size = (i + 1).next_power_of_two() / 2; // coefficients at this level
                let support = n as f64 / level_size as f64;
                c_abs_weight(support)
            }
        };
        ranked.sort_by(|a, b| {
            (b.1.abs() * weight(b.0))
                .total_cmp(&(a.1.abs() * weight(a.0)))
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(budget.max(1));
        ranked.sort_by_key(|&(i, _)| i);

        WaveletSynopsis {
            coefficients: ranked,
            n,
            domain_lo: lo,
            cell_width,
            population: values.len() as f64,
            null_count: null_count as f64,
        }
    }

    /// Number of retained coefficients.
    pub fn len(&self) -> usize {
        self.coefficients.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.coefficients.is_empty()
    }

    /// Total rows described (valid + NULL).
    pub fn total_rows(&self) -> f64 {
        self.population + self.null_count
    }

    /// Reconstructs the (approximate) frequency of cell `i` from the
    /// retained coefficients: walk the Haar tree root-to-leaf.
    fn cell_frequency(&self, cell: u32) -> f64 {
        let mut value = self.coeff(0);
        // Descend: at each level the detail coefficient for the block
        // containing `cell` adds (+) for the left half, (−) for the right.
        let mut level_size = 1u32;
        while level_size < self.n {
            let block_cells = self.n / level_size;
            let block = cell / block_cells;
            let c = self.coeff(level_size + block);
            if c != 0.0 {
                let left_half = cell % block_cells < block_cells / 2;
                value += if left_half { c } else { -c };
            }
            level_size *= 2;
        }
        value.max(0.0)
    }

    /// Retained coefficient at `idx` (0 when thresholded away).
    /// `coefficients` is sorted by index, so this is a binary search.
    fn coeff(&self, idx: u32) -> f64 {
        match self.coefficients.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.coefficients[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Estimated number of rows with value in `[lo, hi]` (inclusive).
    pub fn range_rows(&self, lo: i64, hi: i64) -> f64 {
        if lo > hi || self.population == 0.0 {
            return 0.0;
        }
        let max_cell = self.n as i128 - 1;
        let w = self.cell_width as i128;
        let c_lo = ((lo as i128 - self.domain_lo as i128) / w).clamp(0, max_cell);
        let c_hi = ((hi as i128 - self.domain_lo as i128) / w).clamp(0, max_cell);
        if (hi as i128) < self.domain_lo as i128
            || lo as i128 > self.domain_lo as i128 + w * self.n as i128
        {
            return 0.0;
        }
        let mut total = 0.0;
        for cell in c_lo..=c_hi {
            total += self.cell_frequency(cell as u32);
        }
        total.max(0.0)
    }

    /// Estimated selectivity of `lo <= value <= hi` over all rows.
    pub fn range_selectivity(&self, lo: i64, hi: i64) -> f64 {
        let t = self.total_rows();
        if t == 0.0 {
            return 0.0;
        }
        (self.range_rows(lo, hi) / t).clamp(0.0, 1.0)
    }

    /// Converts the synopsis into a histogram (one bucket per reconstructed
    /// cell with non-zero mass, rescaled to the true population).
    pub fn to_histogram(&self) -> Histogram {
        let mut buckets = Vec::new();
        let mut mass = 0.0;
        for cell in 0..self.n {
            let f = self.cell_frequency(cell);
            if f <= 0.0 {
                continue;
            }
            let lo = self.domain_lo + cell as i64 * self.cell_width;
            let hi = lo + self.cell_width - 1;
            buckets.push(Bucket {
                lo,
                hi,
                freq: f,
                distinct: f.min(self.cell_width as f64).max(1.0),
            });
            mass += f;
        }
        // Rescale reconstruction error so the histogram mass matches the
        // population exactly.
        if mass > 0.0 {
            let scale = self.population / mass;
            for b in &mut buckets {
                b.freq *= scale;
                b.distinct = b.distinct.min(b.freq).max(1.0f64.min(b.freq));
            }
        }
        Histogram::new(buckets, self.null_count)
    }
}

/// Normalization weight for a coefficient whose support covers `support`
/// cells (the L2 contribution of dropping it scales with √support).
fn c_abs_weight(support: f64) -> f64 {
    support.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_budget_reconstructs_exactly() {
        let values = vec![0, 0, 1, 2, 2, 2, 3, 5, 5, 7];
        let w = WaveletSynopsis::build(&values, 0, 1_000);
        for v in 0..=7 {
            let expected = values.iter().filter(|&&x| x == v).count() as f64;
            let got = w.range_rows(v, v);
            assert!(
                (got - expected).abs() < 1e-9,
                "value {v}: got {got}, expected {expected}"
            );
        }
        assert!((w.range_rows(0, 7) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn thresholding_respects_budget_and_keeps_average() {
        let values: Vec<i64> = (0..4096).map(|i| i % 64).collect();
        let w = WaveletSynopsis::build(&values, 0, 10);
        assert!(w.len() <= 10);
        assert!(
            w.coefficients.iter().any(|&(i, _)| i == 0),
            "average coefficient must always be retained"
        );
        // Uniform data: 10 coefficients suffice for a near-exact answer.
        let est = w.range_selectivity(0, 31);
        assert!((est - 0.5).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn skewed_spike_survives_thresholding() {
        // Heavy spike at one value; the wavelet should spend coefficients
        // on it.
        let mut values: Vec<i64> = (0..512).collect();
        values.extend(std::iter::repeat_n(100i64, 5_000));
        let w = WaveletSynopsis::build(&values, 0, 30);
        let est = w.range_rows(100, 100);
        assert!(
            est > 2_500.0,
            "spike mass lost by thresholding: estimated {est}"
        );
    }

    #[test]
    fn wide_domains_are_compressed() {
        let values = vec![i64::MIN / 4, 0, i64::MAX / 4];
        let w = WaveletSynopsis::build(&values, 0, 100);
        assert!(w.n <= 4096);
        assert!((w.range_rows(i64::MIN / 4, i64::MAX / 4) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn to_histogram_preserves_population() {
        let values: Vec<i64> = (0..2_000).map(|i| (i * 7) % 300).collect();
        let w = WaveletSynopsis::build(&values, 13, 50);
        let h = w.to_histogram();
        assert!((h.valid_rows() - 2_000.0).abs() < 1e-6);
        assert_eq!(h.null_count(), 13.0);
        // Estimates agree between synopsis and histogram rendering.
        let ws = w.range_selectivity(0, 149);
        let hs = h.range_selectivity(0, 149);
        assert!((ws - hs).abs() < 0.1, "synopsis {ws} vs histogram {hs}");
    }

    #[test]
    fn empty_input_is_harmless() {
        let w = WaveletSynopsis::build(&[], 4, 10);
        assert!(w.is_empty());
        assert_eq!(w.range_selectivity(0, 100), 0.0);
        assert_eq!(w.total_rows(), 4.0);
        assert!(w.to_histogram().buckets().is_empty());
    }

    #[test]
    fn nulls_enter_the_denominator() {
        let values = vec![1i64; 50];
        let w = WaveletSynopsis::build(&values, 50, 10);
        let sel = w.range_selectivity(1, 1);
        assert!((sel - 0.5).abs() < 1e-9, "sel {sel}");
    }
}

//! Two-dimensional grid histograms — the substrate for multidimensional
//! SITs (§3.3's `SIT(x, X | Q)`).
//!
//! The paper's factor-approximation mechanism is stated for
//! multi-attribute SITs: joining `H1 = SIT(x, X|Q)` with `H2 = SIT(y, Y|Q)`
//! yields both the join selectivity and `H3 = SIT(x, X, Y | x=y, Q)`, whose
//! carried attributes estimate the remaining predicates *without further
//! independence assumptions*. A [`Hist2d`] over `(x, a)` supports exactly
//! that:
//!
//! * [`Hist2d::join_carry`] — equi-join the `x` dimension against a 1-D
//!   histogram and return the carried distribution of `a` over the join
//!   result (Example 3's `H3`);
//! * [`Hist2d::conditional_y`] — the distribution of `a` restricted to an
//!   `x` range (a filter-conditioned-on-filter estimate, no independence
//!   assumption);
//! * joint and marginal range selectivities.
//!
//! The grid uses maxDiff boundaries on each dimension's marginal, so skewed
//! values get their own rows/columns.

use crate::build::build_maxdiff;
use crate::histogram::{Bucket, Histogram};

/// A fixed-grid two-dimensional histogram over `(x, y)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist2d {
    /// X-dimension bucket ranges (sorted, disjoint).
    x_bounds: Vec<(i64, i64)>,
    /// Y-dimension bucket ranges (sorted, disjoint).
    y_bounds: Vec<(i64, i64)>,
    /// Row-major cell counts: `cells[xi * y_bounds.len() + yi]`.
    cells: Vec<f64>,
    /// Distinct x values per x-bucket (for join estimation).
    x_distinct: Vec<f64>,
    /// Rows where either coordinate is NULL.
    null_count: f64,
}

impl Hist2d {
    /// Builds a grid over the `(x, y)` pairs with at most
    /// `x_buckets × y_buckets` cells. Boundaries come from maxDiff on the
    /// marginals. `null_count` counts pairs where either side was NULL.
    pub fn build(
        pairs: &[(i64, i64)],
        null_count: usize,
        x_buckets: usize,
        y_buckets: usize,
    ) -> Self {
        let xs: Vec<i64> = pairs.iter().map(|&(x, _)| x).collect();
        let ys: Vec<i64> = pairs.iter().map(|&(_, y)| y).collect();
        let hx = build_maxdiff(&xs, 0, x_buckets.max(1));
        let hy = build_maxdiff(&ys, 0, y_buckets.max(1));
        let x_bounds: Vec<(i64, i64)> = hx.buckets().iter().map(|b| (b.lo, b.hi)).collect();
        let y_bounds: Vec<(i64, i64)> = hy.buckets().iter().map(|b| (b.lo, b.hi)).collect();
        let mut cells = vec![0.0f64; x_bounds.len() * y_bounds.len()];
        // Distinct x per (x-bucket): track per-bucket value sets compactly
        // by sorting pairs by x.
        let mut sorted: Vec<(i64, i64)> = pairs.to_vec();
        sorted.sort_unstable();
        let mut x_distinct = vec![0.0f64; x_bounds.len()];
        let mut last_x: Option<i64> = None;
        for &(x, y) in &sorted {
            let (Some(xi), Some(yi)) = (bucket_of(&x_bounds, x), bucket_of(&y_bounds, y)) else {
                continue;
            };
            cells[xi * y_bounds.len() + yi] += 1.0;
            if last_x != Some(x) {
                x_distinct[xi] += 1.0;
                last_x = Some(x);
            }
        }
        Hist2d {
            x_bounds,
            y_bounds,
            cells,
            x_distinct,
            null_count: null_count as f64,
        }
    }

    /// Total (non-NULL-pair) rows.
    pub fn valid_rows(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Total rows described.
    pub fn total_rows(&self) -> f64 {
        self.valid_rows() + self.null_count
    }

    /// Grid dimensions `(x buckets, y buckets)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.x_bounds.len(), self.y_bounds.len())
    }

    /// X-dimension bucket ranges (sorted, disjoint, inclusive).
    pub fn x_bounds(&self) -> &[(i64, i64)] {
        &self.x_bounds
    }

    /// Y-dimension bucket ranges (sorted, disjoint, inclusive).
    pub fn y_bounds(&self) -> &[(i64, i64)] {
        &self.y_bounds
    }

    /// Raw mass of cell `(xi, yi)`.
    pub fn cell_mass(&self, xi: usize, yi: usize) -> f64 {
        self.cell(xi, yi)
    }

    /// Mutual information (in nats) between the bucketized `x` and `y`
    /// dimensions: `Σ p(x,y)·ln(p(x,y) / (p(x)p(y)))` over non-empty cells.
    /// Zero iff the grid factors exactly into its marginals — the edge
    /// weight Chow-Liu tree construction maximizes.
    pub fn mutual_information(&self) -> f64 {
        let n = self.valid_rows();
        if n <= 0.0 {
            return 0.0;
        }
        let (bx, by) = self.shape();
        let mut px = vec![0.0f64; bx];
        let mut py = vec![0.0f64; by];
        for (xi, pxi) in px.iter_mut().enumerate() {
            for (yi, pyi) in py.iter_mut().enumerate() {
                let c = self.cell(xi, yi);
                *pxi += c;
                *pyi += c;
            }
        }
        let mut mi = 0.0;
        for (xi, &pxi) in px.iter().enumerate() {
            for (yi, &pyi) in py.iter().enumerate() {
                let pxy = self.cell(xi, yi) / n;
                if pxy > 0.0 {
                    mi += pxy * (pxy * n * n / (pxi * pyi)).ln();
                }
            }
        }
        // Clamp the tiny negative values float cancellation can produce on
        // exactly-independent grids, so "no dependence" is a clean zero.
        mi.max(0.0)
    }

    fn cell(&self, xi: usize, yi: usize) -> f64 {
        self.cells[xi * self.y_bounds.len() + yi]
    }

    /// Joint selectivity of `x ∈ [xlo, xhi] ∧ y ∈ [ylo, yhi]` over all
    /// rows, with continuous interpolation at partial cell overlaps.
    pub fn joint_selectivity(&self, xlo: i64, xhi: i64, ylo: i64, yhi: i64) -> f64 {
        let total = self.total_rows();
        if total == 0.0 {
            return 0.0;
        }
        let mut mass = 0.0;
        for (xi, &(bxl, bxh)) in self.x_bounds.iter().enumerate() {
            let fx = overlap_fraction(bxl, bxh, xlo, xhi);
            if fx == 0.0 {
                continue;
            }
            for (yi, &(byl, byh)) in self.y_bounds.iter().enumerate() {
                let fy = overlap_fraction(byl, byh, ylo, yhi);
                if fy > 0.0 {
                    mass += self.cell(xi, yi) * fx * fy;
                }
            }
        }
        (mass / total).clamp(0.0, 1.0)
    }

    /// The marginal distribution of `y`, as a 1-D histogram.
    pub fn y_marginal(&self) -> Histogram {
        let buckets = self
            .y_bounds
            .iter()
            .enumerate()
            .map(|(yi, &(lo, hi))| {
                let freq: f64 = (0..self.x_bounds.len()).map(|xi| self.cell(xi, yi)).sum();
                Bucket {
                    lo,
                    hi,
                    freq,
                    distinct: ((hi as i128 - lo as i128 + 1) as f64).min(freq.max(1.0)),
                }
            })
            .filter(|b| b.freq > 0.0)
            .collect();
        Histogram::new(buckets, self.null_count)
    }

    /// Distribution of `y` restricted to rows with `x ∈ [xlo, xhi]` — the
    /// conditional `y | x-filter` with **no independence assumption**.
    pub fn conditional_y(&self, xlo: i64, xhi: i64) -> Histogram {
        let mut buckets = Vec::new();
        for (yi, &(lo, hi)) in self.y_bounds.iter().enumerate() {
            let mut freq = 0.0;
            for (xi, &(bxl, bxh)) in self.x_bounds.iter().enumerate() {
                let fx = overlap_fraction(bxl, bxh, xlo, xhi);
                if fx > 0.0 {
                    freq += self.cell(xi, yi) * fx;
                }
            }
            if freq > 0.0 {
                buckets.push(Bucket {
                    lo,
                    hi,
                    freq,
                    distinct: ((hi as i128 - lo as i128 + 1) as f64).min(freq.max(1.0)),
                });
            }
        }
        Histogram::new(buckets, 0.0)
    }

    /// Equi-joins the `x` dimension against a 1-D histogram of the other
    /// side and returns `(join selectivity, carried distribution of y over
    /// the join result)` — the multidimensional `H3` of §3.3. Selectivity
    /// is relative to `total_rows × other.total_rows`.
    pub fn join_carry(&self, other: &Histogram) -> (f64, Histogram) {
        let mut carried: Vec<Bucket> = self
            .y_bounds
            .iter()
            .map(|&(lo, hi)| Bucket {
                lo,
                hi,
                freq: 0.0,
                distinct: 0.0,
            })
            .collect();
        let mut join_rows = 0.0f64;
        for (xi, &(bxl, bxh)) in self.x_bounds.iter().enumerate() {
            let d1 = self.x_distinct[xi];
            if d1 <= 0.0 {
                continue;
            }
            let f1: f64 = (0..self.y_bounds.len()).map(|yi| self.cell(xi, yi)).sum();
            // Other side's mass and distinct count within this x range.
            let f2 = other.range_rows(bxl, bxh);
            let d2 = distinct_in_range(other, bxl, bxh);
            if f1 <= 0.0 || f2 <= 0.0 || d2 <= 0.0 {
                continue;
            }
            // Containment assumption, as in the 1-D histogram join: each of
            // min(d1, d2) matching values carries f1/d1 × f2/d2 rows.
            let multiplier = d1.min(d2) / d1 * (f2 / d2);
            join_rows += f1 * multiplier;
            for (yi, b) in carried.iter_mut().enumerate() {
                let add = self.cell(xi, yi) * multiplier;
                if add > 0.0 {
                    b.freq += add;
                    b.distinct = b.distinct.max(1.0).min((b.hi - b.lo) as f64 + 1.0);
                }
            }
        }
        carried.retain(|b| b.freq > 0.0);
        let denom = self.total_rows() * other.total_rows();
        let sel = if denom == 0.0 {
            0.0
        } else {
            (join_rows / denom).clamp(0.0, 1.0)
        };
        (sel, Histogram::new(carried, 0.0))
    }
}

fn bucket_of(bounds: &[(i64, i64)], v: i64) -> Option<usize> {
    let idx = bounds.partition_point(|&(_, hi)| hi < v);
    match bounds.get(idx) {
        Some(&(lo, hi)) if lo <= v && v <= hi => Some(idx),
        _ => None,
    }
}

fn overlap_fraction(blo: i64, bhi: i64, lo: i64, hi: i64) -> f64 {
    let o_lo = blo.max(lo);
    let o_hi = bhi.min(hi);
    if o_lo > o_hi {
        0.0
    } else {
        (o_hi as i128 - o_lo as i128 + 1) as f64 / (bhi as i128 - blo as i128 + 1) as f64
    }
}

fn distinct_in_range(h: &Histogram, lo: i64, hi: i64) -> f64 {
    h.buckets()
        .iter()
        .map(|b| {
            let f = overlap_fraction(b.lo, b.hi, lo, hi);
            b.distinct * f
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_exact;

    /// Correlated pairs: y = 10·x, x ∈ 0..10 each appearing (x+1) times.
    fn correlated_pairs() -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        for x in 0..10i64 {
            for _ in 0..=x {
                out.push((x, 10 * x));
            }
        }
        out
    }

    #[test]
    fn mass_is_conserved() {
        let pairs = correlated_pairs();
        let h = Hist2d::build(&pairs, 3, 8, 8);
        assert!((h.valid_rows() - pairs.len() as f64).abs() < 1e-9);
        assert_eq!(h.total_rows(), pairs.len() as f64 + 3.0);
        let (bx, by) = h.shape();
        assert!(bx <= 8 && by <= 8);
    }

    #[test]
    fn joint_selectivity_exact_on_fine_grid() {
        let pairs = correlated_pairs(); // 55 pairs
        let h = Hist2d::build(&pairs, 0, 16, 16);
        // x in [0,4] ∧ y in [0,49]: pairs with x ≤ 4 → 1+2+3+4+5 = 15.
        let sel = h.joint_selectivity(0, 4, 0, 49);
        assert!((sel - 15.0 / 55.0).abs() < 1e-9, "sel {sel}");
        // Anti-diagonal region is empty (correlation!).
        let sel = h.joint_selectivity(0, 2, 80, 90);
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn conditional_y_captures_correlation() {
        let pairs = correlated_pairs();
        let h = Hist2d::build(&pairs, 0, 16, 16);
        // Conditioned on x ∈ [8, 9], y must be in {80, 90}.
        let cond = h.conditional_y(8, 9);
        assert!((cond.valid_rows() - 19.0).abs() < 1e-9); // 9 + 10 rows
        assert!(cond.range_selectivity(80, 90) > 0.99);
        assert_eq!(cond.range_selectivity(0, 50), 0.0);
        // The unconditional marginal is spread out instead.
        let marg = h.y_marginal();
        assert!(marg.range_selectivity(0, 50) > 0.2);
    }

    #[test]
    fn y_marginal_matches_direct_histogram() {
        let pairs = correlated_pairs();
        let h = Hist2d::build(&pairs, 0, 16, 16);
        let ys: Vec<i64> = pairs.iter().map(|&(_, y)| y).collect();
        let direct = build_exact(&ys, 0);
        let marg = h.y_marginal();
        for probe in [(0, 30), (40, 90), (0, 90)] {
            let a = marg.range_selectivity(probe.0, probe.1);
            let b = direct.range_selectivity(probe.0, probe.1);
            assert!((a - b).abs() < 1e-9, "probe {probe:?}: {a} vs {b}");
        }
    }

    #[test]
    fn join_carry_reproduces_fanout_weighting() {
        // Fact side: x = order id, y = price; order x appears (x+1) times
        // (fan-in skew) and price = 10·x. Other side: one row per order id
        // (a key). Joining must preserve the fact-side distribution.
        let pairs = correlated_pairs();
        let h = Hist2d::build(&pairs, 0, 16, 16);
        let key_side = build_exact(&(0..10i64).collect::<Vec<_>>(), 0);
        let (sel, carried) = h.join_carry(&key_side);
        // |join| = 55 (every fact row matches exactly one key row);
        // denom = 55 × 10.
        assert!((sel - 0.1).abs() < 0.02, "sel {sel}");
        assert!((carried.valid_rows() - 55.0).abs() < 2.0);
        // The carried distribution keeps the y-skew: y ≥ 80 carries 19/55.
        let frac = carried.range_selectivity(80, 90);
        assert!((frac - 19.0 / 55.0).abs() < 0.05, "carried skew {frac}");
    }

    #[test]
    fn join_carry_against_skewed_other_side() {
        // Other side concentrated on x = 9: carried distribution must
        // concentrate on y = 90.
        let pairs = correlated_pairs();
        let h = Hist2d::build(&pairs, 0, 16, 16);
        let other = build_exact(&vec![9i64; 100], 0);
        let (sel, carried) = h.join_carry(&other);
        assert!(sel > 0.0);
        assert!(
            carried.range_selectivity(90, 90) > 0.99,
            "carried should be all y=90"
        );
    }

    #[test]
    fn mutual_information_separates_dependence_from_independence() {
        // Functional dependence: y = 10·x on a fine grid has high MI.
        let dep = Hist2d::build(&correlated_pairs(), 0, 16, 16);
        // Exact independence: every (x, y) combination equally often.
        let mut ind_pairs = Vec::new();
        for x in 0..8i64 {
            for y in 0..8i64 {
                ind_pairs.push((x, y));
            }
        }
        let ind = Hist2d::build(&ind_pairs, 0, 16, 16);
        assert!(
            dep.mutual_information() > 1.0,
            "{}",
            dep.mutual_information()
        );
        assert!(
            ind.mutual_information() < 1e-9,
            "{}",
            ind.mutual_information()
        );
        assert_eq!(Hist2d::build(&[], 0, 8, 8).mutual_information(), 0.0);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let h = Hist2d::build(&[], 0, 8, 8);
        assert_eq!(h.valid_rows(), 0.0);
        assert_eq!(h.joint_selectivity(0, 10, 0, 10), 0.0);
        let (sel, carried) = h.join_carry(&build_exact(&[1, 2], 0));
        assert_eq!(sel, 0.0);
        assert!(carried.buckets().is_empty());
        assert!(h.y_marginal().buckets().is_empty());
    }
}

//! Branchless, autovectorizable estimation kernels.
//!
//! The histogram kernels sit under every peel of the estimator's `O(3ⁿ)`
//! dynamic program, so their per-call constant matters more than anywhere
//! else in the codebase. This module holds the data-independent inner
//! loops:
//!
//! * [`count_lt`] / [`count_le`] — branchless binary searches over a sorted
//!   `i64` slice. Each step narrows the window with
//!   [`core::hint::select_unpredictable`] — the same primitive `std`'s
//!   binary search uses — so the data comparison lowers to a conditional
//!   move instead of a branch and the loop pipelines without branch
//!   mispredictions. (A plain `if`, or `(cond as usize) * half` arithmetic,
//!   measurably does **not** survive codegen as a cmov here: LLVM turns
//!   both back into a data-dependent branch, which mispredicts ~50% per
//!   level on real probes — 5× slower in `kernels_bench`.) The windows are
//!   subslices whose probe index is provably in bounds, so the loads carry
//!   no bounds-check either. Equivalent to `partition_point` bit for bit
//!   (both count elements strictly below / at-or-below `v`).
//! * [`count_lt4`] / [`count_le4`] — four lockstep searches over the same
//!   slice. The probe loop is fixed-width (4 independent selects per
//!   level), so the four probe loads overlap in the pipeline instead of
//!   serializing; lane indices are `min`-clamped to the last element (a
//!   no-op by the loop invariant) so every load is provably in bounds
//!   without `unsafe`. Used when several probes hit one CDF (batched
//!   filter estimation, the kernels microbench).
//! * [`join_segments`] — the histogram equi-join inner loop as a two-pointer
//!   merge over bucket boundaries, replacing the former
//!   sort + dedup + per-segment binary search. The cut sequence, per-segment
//!   arithmetic, and accumulation order are identical to the reference
//!   ([`crate::histogram::Histogram::join_reference`]), so the result is
//!   bit-identical; only the segment *discovery* cost drops from
//!   `O(s·log b + s·log s)` to `O(s)`.
//!
//! Everything here is portable scalar Rust — no `std::simd`, no
//! target-feature gates — shaped so the autovectorizer can do the widening.
//! Bit-identity against the straightforward implementations is pinned by
//! the tests below and by `cargo run -p sqe-bench --bin kernels_bench`.

use std::hint::select_unpredictable;

use crate::histogram::{span_f64, Bucket};

/// Number of elements of the sorted slice `a` strictly less than `v`.
/// Equivalent to `a.partition_point(|x| *x < v)`.
#[inline]
pub fn count_lt(a: &[i64], v: i64) -> usize {
    let mut base = 0usize;
    let mut s = a;
    while s.len() > 1 {
        // Probe the first element of the upper half (`s[half]` — provably
        // in bounds since `half < s.len()`, so the load is unchecked) and
        // keep whichever half can still contain the partition point. Both
        // candidate windows have length `keep`, and `select_unpredictable`
        // forces the choice into conditional moves: the only branch left
        // is the loop counter, which is data-independent and predicted
        // perfectly.
        let half = s.len() / 2;
        let keep = s.len() - half;
        let (low, high) = (&s[..keep], &s[half..]);
        let go = high[0] < v;
        base += select_unpredictable(go, half, 0);
        s = select_unpredictable(go, high, low);
    }
    base + usize::from(!s.is_empty() && s[0] < v)
}

/// Number of elements of the sorted slice `a` less than or equal to `v`.
/// Equivalent to `a.partition_point(|x| *x <= v)`.
#[inline]
pub fn count_le(a: &[i64], v: i64) -> usize {
    let mut base = 0usize;
    let mut s = a;
    while s.len() > 1 {
        let half = s.len() / 2;
        let keep = s.len() - half;
        let (low, high) = (&s[..keep], &s[half..]);
        let go = high[0] <= v;
        base += select_unpredictable(go, half, 0);
        s = select_unpredictable(go, high, low);
    }
    base + usize::from(!s.is_empty() && s[0] <= v)
}

/// Four [`count_lt`] searches over the same slice, advanced in lockstep:
/// every level issues four independent probe loads and four conditional
/// moves, so the hardware overlaps the four probe chains. Lane indices are
/// `min`-clamped to `a.len() - 1` — a no-op under the loop invariant
/// `base[k] + n <= a.len()`, but it lets the compiler discharge every
/// bounds check without `unsafe`.
#[inline]
pub fn count_lt4(a: &[i64], vs: [i64; 4]) -> [usize; 4] {
    if a.is_empty() {
        return [0; 4];
    }
    let last = a.len() - 1;
    let mut base = [0usize; 4];
    let mut n = a.len();
    while n > 1 {
        let half = n / 2;
        for k in 0..4 {
            let idx = (base[k] + half).min(last);
            base[k] += select_unpredictable(a[idx] < vs[k], half, 0);
        }
        n -= half;
    }
    let mut out = [0usize; 4];
    for k in 0..4 {
        out[k] = base[k] + usize::from(a[base[k].min(last)] < vs[k]);
    }
    out
}

/// Four [`count_le`] searches over the same slice in lockstep.
#[inline]
pub fn count_le4(a: &[i64], vs: [i64; 4]) -> [usize; 4] {
    if a.is_empty() {
        return [0; 4];
    }
    let last = a.len() - 1;
    let mut base = [0usize; 4];
    let mut n = a.len();
    while n > 1 {
        let half = n / 2;
        for k in 0..4 {
            let idx = (base[k] + half).min(last);
            base[k] += select_unpredictable(a[idx] <= vs[k], half, 0);
        }
        n -= half;
    }
    let mut out = [0usize; 4];
    for k in 0..4 {
        out[k] = base[k] + usize::from(a[base[k].min(last)] <= vs[k]);
    }
    out
}

/// The next boundary event of one side of the merge: entering bucket `i`
/// (its `lo`) when outside, leaving it (`hi + 1`, saturated exactly like
/// the reference's cut list) when inside. `None` once the side is
/// exhausted.
#[inline]
fn next_cut(buckets: &[Bucket], i: usize, inside: bool) -> Option<i64> {
    let b = buckets.get(i)?;
    Some(if inside { b.hi.saturating_add(1) } else { b.lo })
}

/// Frequency and distinct mass one side contributes to the segment
/// `[lo, hi]`, given the merge state. Same arithmetic as the reference
/// `segment_mass`, with the overlapping bucket known from the pointer
/// instead of re-found by binary search.
#[inline]
fn side_mass(buckets: &[Bucket], i: usize, inside: bool, lo: i64, hi: i64) -> (f64, f64) {
    if !inside {
        return (0.0, 0.0);
    }
    let b = &buckets[i];
    let frac = b.overlap_fraction(lo, hi);
    (b.freq * frac, (b.distinct * frac).min(span_f64(lo, hi)))
}

/// Advances one side of the merge past the cut it just emitted. Leaving a
/// bucket whose successor starts exactly at the cut enters the successor
/// immediately — that shared boundary appears once in the reference's
/// deduplicated cut list, so it must be consumed in a single step here too.
#[inline]
fn advance(buckets: &[Bucket], i: &mut usize, inside: &mut bool, cut: i64) {
    if *inside {
        *i += 1;
        *inside = buckets.get(*i).is_some_and(|b| b.lo == cut);
    } else {
        *inside = true;
    }
}

/// Histogram equi-join inner loop: walks the union of both sides' bucket
/// boundaries with two cursors, evaluating each aligned segment in
/// ascending order. Returns the output buckets (unmerged) and the total
/// output rows, both bit-identical to the reference path.
pub(crate) fn join_segments(a: &[Bucket], b: &[Bucket]) -> (Vec<Bucket>, f64) {
    let mut out: Vec<Bucket> = Vec::new();
    let mut out_rows = 0.0f64;
    let (mut ia, mut ib) = (0usize, 0usize);
    let (mut ina, mut inb) = (false, false);
    let mut prev: Option<i64> = None;
    loop {
        let ca = next_cut(a, ia, ina);
        let cb = next_cut(b, ib, inb);
        let cut = match (ca, cb) {
            (None, None) => break,
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (Some(x), Some(y)) => x.min(y),
        };
        if let Some(lo) = prev {
            let hi = cut - 1;
            if lo <= hi {
                let (f1, d1) = side_mass(a, ia, ina, lo, hi);
                let (f2, d2) = side_mass(b, ib, inb, lo, hi);
                if f1 > 0.0 && f2 > 0.0 && d1 > 0.0 && d2 > 0.0 {
                    let matching = d1.min(d2);
                    let rows = matching * (f1 / d1) * (f2 / d2);
                    if rows > 0.0 {
                        out_rows += rows;
                        out.push(Bucket {
                            lo,
                            hi,
                            freq: rows,
                            distinct: matching,
                        });
                    }
                }
            }
        }
        if ca == Some(cut) {
            advance(a, &mut ia, &mut ina, cut);
        }
        if cb == Some(cut) {
            advance(b, &mut ib, &mut inb, cut);
        }
        prev = Some(cut);
    }
    (out, out_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> i64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as i64
    }

    fn sorted_vals(state: &mut u64, len: usize) -> Vec<i64> {
        let mut v: Vec<i64> = (0..len)
            .map(|_| lcg(state).rem_euclid(1000) - 500)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn branchless_searches_match_partition_point() {
        let mut state = 0xC0FFEE_u64;
        for len in [0usize, 1, 2, 3, 7, 8, 64, 200, 513] {
            let a = sorted_vals(&mut state, len);
            for _ in 0..200 {
                let v = lcg(&mut state).rem_euclid(1200) - 600;
                assert_eq!(
                    count_lt(&a, v),
                    a.partition_point(|x| *x < v),
                    "lt len {len} v {v}"
                );
                assert_eq!(
                    count_le(&a, v),
                    a.partition_point(|x| *x <= v),
                    "le len {len} v {v}"
                );
            }
            // Boundary probes: every element, below-min, above-max.
            for &v in a.iter().chain([i64::MIN, i64::MAX].iter()) {
                assert_eq!(count_lt(&a, v), a.partition_point(|x| *x < v));
                assert_eq!(count_le(&a, v), a.partition_point(|x| *x <= v));
            }
        }
    }

    #[test]
    fn batched_searches_match_scalar_lanes() {
        let mut state = 0xBEEF_u64;
        for len in [0usize, 1, 5, 63, 200] {
            let a = sorted_vals(&mut state, len);
            for _ in 0..100 {
                let vs = [
                    lcg(&mut state).rem_euclid(1200) - 600,
                    lcg(&mut state).rem_euclid(1200) - 600,
                    lcg(&mut state).rem_euclid(1200) - 600,
                    lcg(&mut state).rem_euclid(1200) - 600,
                ];
                let lt = count_lt4(&a, vs);
                let le = count_le4(&a, vs);
                for k in 0..4 {
                    assert_eq!(lt[k], count_lt(&a, vs[k]));
                    assert_eq!(le[k], count_le(&a, vs[k]));
                }
            }
        }
    }

    #[test]
    fn merge_handles_adjacent_buckets_as_one_cut() {
        // Two adjacent buckets on one side share the boundary 10: the merge
        // must leave bucket 0 and enter bucket 1 in a single step, exactly
        // like the deduplicated cut list of the reference.
        let a = vec![
            Bucket {
                lo: 0,
                hi: 9,
                freq: 10.0,
                distinct: 10.0,
            },
            Bucket {
                lo: 10,
                hi: 19,
                freq: 20.0,
                distinct: 10.0,
            },
        ];
        let b = vec![Bucket {
            lo: 0,
            hi: 19,
            freq: 40.0,
            distinct: 20.0,
        }];
        let (segs, rows) = join_segments(&a, &b);
        assert_eq!(segs.len(), 2);
        assert_eq!((segs[0].lo, segs[0].hi), (0, 9));
        assert_eq!((segs[1].lo, segs[1].hi), (10, 19));
        // Segment [0,9]: d = min(10, 10) = 10, rows = 10·(10/10)·(20/10) = 20.
        // Segment [10,19]: rows = 10·(20/10)·(20/10) = 40.
        assert!((rows - 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_handles_disjoint_and_gapped_sides() {
        let a = vec![Bucket {
            lo: 0,
            hi: 4,
            freq: 5.0,
            distinct: 5.0,
        }];
        let b = vec![Bucket {
            lo: 10,
            hi: 14,
            freq: 5.0,
            distinct: 5.0,
        }];
        let (segs, rows) = join_segments(&a, &b);
        assert!(segs.is_empty());
        assert_eq!(rows, 0.0);
    }
}

//! Sample-based statistics.
//!
//! The paper notes that "although in this paper we focus on SITs as
//! histograms, the same ideas can be applied to other statistical
//! estimators, such as wavelets or samples". This module provides the
//! sample estimator: a fixed-size uniform **reservoir sample** of an
//! attribute over a query expression's result, with the same estimation
//! operations as a histogram (range/equality selectivity, equi-join) and a
//! conversion to a scaled [`Histogram`] so samples can flow through the SIT
//! machinery unchanged.
//!
//! Sampling is deterministic given a seed (a self-contained xorshift64*
//! keeps this crate dependency-free).

use crate::histogram::{Bucket, Histogram};

/// A uniform fixed-capacity sample of a value population.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    values: Vec<i64>,
    population: f64,
    null_count: f64,
}

/// Minimal xorshift64* PRNG (Marsaglia); good enough for reservoir
/// positions, zero dependencies.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that nearby seeds yield unrelated states
        // (and the state is never zero).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64((z ^ (z >> 31)) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

impl Sample {
    /// Draws a uniform reservoir sample of at most `capacity` of the
    /// non-NULL `values` (Algorithm R), deterministically for a given
    /// `seed`.
    pub fn build(values: &[i64], null_count: usize, capacity: usize, seed: u64) -> Self {
        let capacity = capacity.max(1);
        let mut rng = XorShift64::new(seed ^ 0x5EED_5A4D_1E5A_4D1Eu64);
        let mut reservoir: Vec<i64> = Vec::with_capacity(capacity.min(values.len()));
        for (i, &v) in values.iter().enumerate() {
            if reservoir.len() < capacity {
                reservoir.push(v);
            } else {
                let j = rng.below(i as u64 + 1) as usize;
                if j < capacity {
                    reservoir[j] = v;
                }
            }
        }
        Sample {
            values: reservoir,
            population: values.len() as f64,
            null_count: null_count as f64,
        }
    }

    /// Number of sampled values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Size of the sampled (non-NULL) population.
    pub fn population(&self) -> f64 {
        self.population
    }

    /// Total rows described (valid + NULL).
    pub fn total_rows(&self) -> f64 {
        self.population + self.null_count
    }

    /// The sampled values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Estimated selectivity of `lo <= value <= hi` as a fraction of all
    /// rows (NULLs never qualify).
    pub fn range_selectivity(&self, lo: i64, hi: i64) -> f64 {
        if self.values.is_empty() || self.total_rows() == 0.0 {
            return 0.0;
        }
        let hits = self.values.iter().filter(|&&v| lo <= v && v <= hi).count();
        let frac_valid = hits as f64 / self.values.len() as f64;
        (frac_valid * self.population / self.total_rows()).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `value = v`.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        self.range_selectivity(v, v)
    }

    /// Estimated join selectivity against another sample: the classic
    /// sample-join estimate `|S1 ⋈ S2| · (N1/n1) · (N2/n2) / (N1·N2)` —
    /// match counts in the samples, scaled to the populations.
    pub fn join_selectivity(&self, other: &Sample) -> f64 {
        if self.values.is_empty() || other.values.is_empty() {
            return 0.0;
        }
        let mut counts = std::collections::HashMap::with_capacity(self.values.len());
        for &v in &self.values {
            *counts.entry(v).or_insert(0u64) += 1;
        }
        let matches: u64 = other
            .values
            .iter()
            .map(|v| counts.get(v).copied().unwrap_or(0))
            .sum();
        let denom = self.total_rows() * other.total_rows();
        if denom == 0.0 {
            return 0.0;
        }
        let scale = (self.population / self.values.len() as f64)
            * (other.population / other.values.len() as f64);
        (matches as f64 * scale / denom).clamp(0.0, 1.0)
    }

    /// Converts the sample into a scaled exact histogram (each sampled
    /// value represents `population / len` rows), so samples plug into any
    /// histogram-based consumer.
    pub fn to_histogram(&self) -> Histogram {
        if self.values.is_empty() {
            return Histogram::new(Vec::new(), self.null_count);
        }
        let weight = self.population / self.values.len() as f64;
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let mut buckets: Vec<Bucket> = Vec::new();
        for v in sorted {
            match buckets.last_mut() {
                Some(b) if b.lo == v => b.freq += weight,
                _ => buckets.push(Bucket {
                    lo: v,
                    hi: v,
                    freq: weight,
                    distinct: 1.0,
                }),
            }
        }
        Histogram::new(buckets, self.null_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: i64) -> Vec<i64> {
        (0..n).collect()
    }

    #[test]
    fn small_populations_are_kept_verbatim() {
        let s = Sample::build(&[3, 1, 2], 0, 10, 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.population(), 3.0);
        let mut vals = s.values().to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn capacity_is_respected_and_deterministic() {
        let vals = uniform(10_000);
        let a = Sample::build(&vals, 0, 200, 42);
        let b = Sample::build(&vals, 0, 200, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        let c = Sample::build(&vals, 0, 200, 43);
        assert_ne!(a, c, "different seeds produce different samples");
    }

    #[test]
    fn range_estimates_are_close_on_uniform_data() {
        let vals = uniform(100_000);
        let s = Sample::build(&vals, 0, 2_000, 1);
        let est = s.range_selectivity(0, 24_999);
        assert!((est - 0.25).abs() < 0.05, "estimate {est}");
        assert_eq!(s.range_selectivity(200_000, 300_000), 0.0);
    }

    #[test]
    fn nulls_dilute_sample_estimates() {
        let vals = uniform(1_000);
        let s = Sample::build(&vals, 1_000, 100, 1);
        let est = s.range_selectivity(0, 999);
        assert!((est - 0.5).abs() < 0.05, "estimate {est}");
        assert_eq!(s.total_rows(), 2_000.0);
    }

    #[test]
    fn join_selectivity_matches_truth_on_keys() {
        // Key-key join of identical domains: |join| = N, sel = 1/N.
        let vals = uniform(10_000);
        let a = Sample::build(&vals, 0, 1_500, 3);
        let b = Sample::build(&vals, 0, 1_500, 4);
        let est = a.join_selectivity(&b);
        let truth = 1.0 / 10_000.0;
        assert!(
            est > 0.0 && (est / truth) < 10.0 && (truth / est) < 10.0,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn join_of_disjoint_samples_is_zero() {
        let a = Sample::build(&uniform(100), 0, 50, 1);
        let b = Sample::build(&(1000..1100).collect::<Vec<_>>(), 0, 50, 2);
        assert_eq!(a.join_selectivity(&b), 0.0);
    }

    #[test]
    fn to_histogram_preserves_mass_and_estimates() {
        let vals = uniform(50_000);
        let s = Sample::build(&vals, 10, 500, 9);
        let h = s.to_histogram();
        assert!((h.valid_rows() - 50_000.0).abs() < 1e-6);
        assert!((h.null_count() - 10.0).abs() < 1e-9);
        let hs = h.range_selectivity(0, 9_999);
        let ss = s.range_selectivity(0, 9_999);
        assert!((hs - ss).abs() < 0.02, "histogram {hs} vs sample {ss}");
    }

    #[test]
    fn empty_sample_estimates_zero() {
        let s = Sample::build(&[], 5, 100, 1);
        assert!(s.is_empty());
        assert_eq!(s.range_selectivity(0, 10), 0.0);
        assert_eq!(s.join_selectivity(&s), 0.0);
        assert!(s.to_histogram().buckets().is_empty());
    }

    #[test]
    fn reservoir_is_statistically_uniform() {
        // Sample 1 of {0,1,2,3}: each value should appear ~25% of the time
        // across seeds.
        let vals = vec![0i64, 1, 2, 3];
        let mut counts = [0u32; 4];
        for seed in 0..4_000u64 {
            let s = Sample::build(&vals, 0, 1, seed);
            counts[s.values()[0] as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 / 4_000.0 - 0.25).abs() < 0.05,
                "value {v} sampled {c}/4000 times"
            );
        }
    }
}

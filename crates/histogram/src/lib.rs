//! # sqe-histogram — histogram substrate for SITs
//!
//! Unidimensional histograms over `i64` attributes, matching the statistical
//! machinery the paper relies on:
//!
//! * **maxDiff** construction (Poosala et al. \[22\], the paper's choice for
//!   SITs, §5 "each SIT is a unidimensional maxDiff histogram with at most
//!   200 buckets"), plus equi-depth and equi-width baselines,
//! * selectivity estimation for range / equality / comparison predicates
//!   with continuous-value interpolation inside buckets,
//! * **histogram equi-join** (§3.3): joining `H1` and `H2` returns both the
//!   join selectivity *and* a result histogram `H3` describing the join
//!   attribute's distribution over the join output — the paper uses `H3` to
//!   estimate remaining predicates after a join,
//! * the **`diff` metric** of §3.5: the total variation distance
//!   `½·Σ_x |f(R,x)/|R| − f(T′,x)/|T′||` between a base-table distribution
//!   and the distribution over a query expression's result, computed either
//!   exactly from values or approximately from a pair of histograms.
//!
//! Histograms track NULLs separately (`null_count`): NULL never satisfies a
//! predicate, so estimates are fractions of *all* rows (valid + NULL) while
//! bucket mass covers valid rows only.

pub mod build;
pub mod diff;
pub mod hist2d;
pub mod histogram;
pub mod kernels;
pub mod maintain;
pub mod sample;
pub mod wavelet;

pub use build::{build_equi_depth, build_equi_width, build_exact, build_maxdiff, BuilderKind};
pub use diff::{diff_exact, diff_from_histograms};
pub use hist2d::Hist2d;
pub use histogram::{Bucket, Histogram, JoinResult};
pub use kernels::{count_le, count_le4, count_lt, count_lt4};
pub use maintain::merge_delta;
pub use sample::Sample;
pub use wavelet::WaveletSynopsis;

/// Default bucket budget used throughout the reproduction (the paper uses
/// "at most 200 buckets" per SIT).
pub const DEFAULT_BUCKETS: usize = 200;

//! Histogram representation, estimation, and the histogram join.

use crate::kernels::{count_le, count_lt, join_segments};

/// One histogram bucket over the inclusive value range `[lo, hi]`.
///
/// `freq` is the (possibly fractional, after scaling) number of rows falling
/// in the range; `distinct` the estimated number of distinct values present.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound (`hi >= lo`).
    pub hi: i64,
    /// Row count in the bucket.
    pub freq: f64,
    /// Distinct-value count in the bucket (`0 < distinct <= width`).
    pub distinct: f64,
}

/// Number of integer values in the inclusive range `[lo, hi]`, as `f64`,
/// overflow-safe for the full `i64` domain.
pub(crate) fn span_f64(lo: i64, hi: i64) -> f64 {
    (hi as i128 - lo as i128 + 1) as f64
}

impl Bucket {
    /// Number of integer values covered by the bucket.
    pub fn width(&self) -> f64 {
        span_f64(self.lo, self.hi)
    }

    /// Fraction of this bucket's value range that overlaps `[lo, hi]`
    /// (inclusive), under the continuous-values assumption.
    pub(crate) fn overlap_fraction(&self, lo: i64, hi: i64) -> f64 {
        let o_lo = self.lo.max(lo);
        let o_hi = self.hi.min(hi);
        if o_lo > o_hi {
            0.0
        } else {
            span_f64(o_lo, o_hi) / self.width()
        }
    }
}

/// A unidimensional histogram over an `i64` attribute.
///
/// Bucket ranges are disjoint and sorted ascending; gaps between buckets
/// denote value ranges with no rows. `null_count` rows have NULL in the
/// attribute and live outside every bucket.
///
/// Alongside the buckets the histogram carries prefix-sum CDFs of the
/// frequency and distinct counts, so every range/equality kernel is a
/// binary search plus two CDF lookups instead of an `O(b)` bucket scan —
/// these kernels sit under every peel, view-match filter estimate, and
/// `H3` join of the estimator. The CDFs — and the structure-of-arrays
/// bound columns `los`/`his` that the branchless searches of
/// [`crate::kernels`] probe — are derived state: they are rebuilt by
/// [`Histogram::new`], excluded from equality, and never serialized (the
/// wire format stays `{buckets, null_count}`).
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    null_count: f64,
    /// `freq_cdf[k]` = Σ `buckets[..k].freq` (length `buckets.len() + 1`,
    /// accumulated left to right so `freq_cdf.last()` is bit-identical to
    /// the former `iter().sum()` walk).
    freq_cdf: Vec<f64>,
    /// `distinct_cdf[k]` = Σ `buckets[..k].distinct`, same layout.
    distinct_cdf: Vec<f64>,
    /// `los[k]` = `buckets[k].lo`: the bound column the range kernels
    /// search, split out of the 32-byte bucket struct so probes touch a
    /// dense `i64` array (4× the bounds per cache line) and the branchless
    /// search never loads freq/distinct it does not need.
    los: Vec<i64>,
    /// `his[k]` = `buckets[k].hi`, same layout.
    his: Vec<i64>,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // The CDFs are a pure function of the buckets; comparing them
        // would be redundant.
        self.buckets == other.buckets && self.null_count == other.null_count
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(Vec::new(), 0.0)
    }
}

impl serde::Serialize for Histogram {
    fn to_value(&self) -> serde::Value {
        // Manual impl (the derive would add the derived CDF fields): same
        // `{buckets, null_count}` object the former derive produced.
        serde::Value::Object(vec![
            ("buckets".to_string(), self.buckets.to_value()),
            ("null_count".to_string(), self.null_count.to_value()),
        ])
    }
}

impl serde::Deserialize for Histogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("Histogram: expected object"))?;
        let buckets = Vec::<Bucket>::from_value(serde::field(fields, "buckets")?)?;
        let null_count = f64::from_value(serde::field(fields, "null_count")?)?;
        Ok(Histogram::new(buckets, null_count))
    }
}

/// Result of a histogram equi-join (§3.3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinResult {
    /// `Sel(x = y)` relative to the cross product of the two inputs: the
    /// estimated join output size divided by `|H1 rows| · |H2 rows|`.
    pub selectivity: f64,
    /// `H3`: distribution of the (shared) join attribute over the join
    /// output — usable to estimate further predicates on that attribute.
    pub histogram: Histogram,
}

impl Histogram {
    /// Creates a histogram from buckets (must be sorted, disjoint, and
    /// well-formed; checked with debug assertions) and a NULL count.
    pub fn new(buckets: Vec<Bucket>, null_count: f64) -> Self {
        debug_assert!(buckets.iter().all(|b| b.lo <= b.hi));
        debug_assert!(buckets.iter().all(|b| b.freq >= 0.0 && b.distinct >= 0.0));
        debug_assert!(buckets.windows(2).all(|w| w[0].hi < w[1].lo));
        let mut freq_cdf = Vec::with_capacity(buckets.len() + 1);
        let mut distinct_cdf = Vec::with_capacity(buckets.len() + 1);
        let (mut f, mut d) = (0.0f64, 0.0f64);
        freq_cdf.push(f);
        distinct_cdf.push(d);
        for b in &buckets {
            f += b.freq;
            d += b.distinct;
            freq_cdf.push(f);
            distinct_cdf.push(d);
        }
        let los = buckets.iter().map(|b| b.lo).collect();
        let his = buckets.iter().map(|b| b.hi).collect();
        Histogram {
            buckets,
            null_count,
            freq_cdf,
            distinct_cdf,
            los,
            his,
        }
    }

    /// An empty histogram (no rows at all).
    pub fn empty() -> Self {
        Histogram::default()
    }

    /// The buckets, ascending.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Rows with a NULL attribute value.
    pub fn null_count(&self) -> f64 {
        self.null_count
    }

    /// Rows with a non-NULL attribute value. `O(1)`: the last CDF entry is
    /// the same left-to-right sum the bucket scan produced.
    pub fn valid_rows(&self) -> f64 {
        *self.freq_cdf.last().expect("CDF always has a zero entry")
    }

    /// Total rows described (valid + NULL) — the denominator of every
    /// selectivity this histogram reports.
    pub fn total_rows(&self) -> f64 {
        self.valid_rows() + self.null_count
    }

    /// Total distinct values represented (`O(1)`, from the distinct CDF).
    pub fn distinct_values(&self) -> f64 {
        *self
            .distinct_cdf
            .last()
            .expect("CDF always has a zero entry")
    }

    /// Smallest and largest covered values.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        Some((self.buckets.first()?.lo, self.buckets.last()?.hi))
    }

    /// Estimated number of rows with value in `[lo, hi]` (inclusive).
    ///
    /// Binary search locates the overlapping bucket run; the two edge
    /// buckets contribute their overlap fraction and the fully-covered
    /// middle comes from one frequency-CDF subtraction. Versus the former
    /// full scan the result can differ by the usual prefix-subtraction
    /// rounding (≲ `b·ε` relative — pinned by the kernel tests); fully
    /// covered edge buckets still contribute `freq` exactly because
    /// `overlap_fraction` is exactly `1.0` there.
    pub fn range_rows(&self, lo: i64, hi: i64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        // First bucket not entirely below the range, first bucket entirely
        // above it: buckets[a..b] are exactly the overlapping ones. Both
        // searches run branchless over the SoA bound columns (equivalent to
        // `partition_point(|bk| bk.hi < lo)` / `(|bk| bk.lo <= hi)`).
        let a = count_lt(&self.his, lo);
        let b = count_le(&self.los, hi);
        if a >= b {
            return 0.0;
        }
        let first = &self.buckets[a];
        if b - a == 1 {
            return first.freq * first.overlap_fraction(lo, hi);
        }
        let last = &self.buckets[b - 1];
        first.freq * first.overlap_fraction(lo, hi)
            + (self.freq_cdf[b - 1] - self.freq_cdf[a + 1])
            + last.freq * last.overlap_fraction(lo, hi)
    }

    /// Estimated selectivity of `lo <= value <= hi`, as a fraction of all
    /// rows (NULLs never qualify). Returns 0 for an empty histogram.
    pub fn range_selectivity(&self, lo: i64, hi: i64) -> f64 {
        let total = self.total_rows();
        if total == 0.0 {
            return 0.0;
        }
        (self.range_rows(lo, hi) / total).clamp(0.0, 1.0)
    }

    /// The bucket whose range contains `v`, by binary search (buckets are
    /// sorted and disjoint, so the first bucket with `hi >= v` is the only
    /// candidate). Shared by [`Histogram::eq_rows`] and — through
    /// [`Histogram::range_rows`] — every [`Histogram::cmp_selectivity`]
    /// call.
    fn covering_bucket(&self, v: i64) -> Option<&Bucket> {
        let i = count_lt(&self.his, v);
        self.buckets.get(i).filter(|b| b.lo <= v)
    }

    /// Estimated number of rows with value exactly `v` (freq/distinct within
    /// the covering bucket — the standard uniform-frequency assumption).
    pub fn eq_rows(&self, v: i64) -> f64 {
        match self.covering_bucket(v) {
            Some(b) if b.distinct > 0.0 => b.freq / b.distinct.max(1.0),
            _ => 0.0,
        }
    }

    /// Estimated selectivity of `value = v`.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        let total = self.total_rows();
        if total == 0.0 {
            return 0.0;
        }
        (self.eq_rows(v) / total).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a one-sided comparison. `strict` excludes
    /// the boundary (`<` / `>` vs `<=` / `>=`); `less` selects the lower
    /// side. Runs on the same binary-search range kernel as `eq_rows`
    /// (through [`Histogram::range_selectivity`]), so it is `O(log b)`.
    pub fn cmp_selectivity(&self, v: i64, less: bool, strict: bool) -> f64 {
        let Some((lo, hi)) = self.bounds() else {
            return 0.0;
        };
        if less {
            let end = if strict { v.saturating_sub(1) } else { v };
            self.range_selectivity(lo.min(end), end)
        } else {
            let start = if strict { v.saturating_add(1) } else { v };
            self.range_selectivity(start, hi.max(start))
        }
    }

    /// Multiplies every frequency by `factor` (NULLs included). Used when a
    /// histogram is rescaled to model a filtered/joined population.
    pub fn scale(&self, factor: f64) -> Histogram {
        debug_assert!(factor >= 0.0);
        Histogram::new(
            self.buckets
                .iter()
                .map(|b| {
                    let freq = b.freq * factor;
                    Bucket {
                        freq,
                        // Distinct values never grow and cannot exceed the
                        // remaining (possibly fractional) rows.
                        distinct: b.distinct.min(freq),
                        ..*b
                    }
                })
                .collect(),
            self.null_count * factor,
        )
    }

    /// Restricts the histogram to `[lo, hi]`, keeping only (parts of)
    /// buckets that overlap. Frequencies and distinct counts are reduced
    /// proportionally to the overlap.
    pub fn restrict(&self, lo: i64, hi: i64) -> Histogram {
        let mut buckets = Vec::new();
        for b in &self.buckets {
            let o_lo = b.lo.max(lo);
            let o_hi = b.hi.min(hi);
            if o_lo > o_hi {
                continue;
            }
            let frac = b.overlap_fraction(lo, hi);
            buckets.push(Bucket {
                lo: o_lo,
                hi: o_hi,
                freq: b.freq * frac,
                distinct: (b.distinct * frac).max(1.0).min(span_f64(o_lo, o_hi)),
            });
        }
        Histogram::new(buckets, 0.0)
    }

    /// Histogram equi-join (§3.3). Aligns the two bucket sequences on the
    /// union of their boundaries; within each aligned segment the estimated
    /// number of matching distinct values is `min(d1, d2)` and each matching
    /// value contributes `(f1/d1)·(f2/d2)` output rows (uniform-frequency
    /// within segments, containment of the rarer value set).
    ///
    /// Returns the join selectivity relative to `|H1| · |H2|` (NULL rows
    /// never join, but they stay in the denominators) and the result
    /// distribution `H3` of the join attribute.
    ///
    /// The segment walk runs on the two-pointer merge kernel
    /// ([`crate::kernels::join_segments`]), bit-identical to
    /// [`Histogram::join_reference`] (pinned by a test below) but without
    /// the boundary sort or per-segment binary searches.
    pub fn join(&self, other: &Histogram) -> JoinResult {
        let (out_buckets, out_rows) = join_segments(&self.buckets, &other.buckets);
        self.finish_join(other, out_buckets, out_rows)
    }

    /// Reference implementation of [`Histogram::join`]: materialize the
    /// sorted deduplicated boundary list, then binary-search each side per
    /// segment. Kept (not dead-code) as the equivalence oracle for the
    /// merge-scan kernel, here and in the kernels microbench.
    pub fn join_reference(&self, other: &Histogram) -> JoinResult {
        let mut out_buckets: Vec<Bucket> = Vec::new();
        let mut out_rows = 0.0f64;
        for (lo, hi) in segment_boundaries(&self.buckets, &other.buckets) {
            let (f1, d1) = segment_mass(&self.buckets, lo, hi);
            let (f2, d2) = segment_mass(&other.buckets, lo, hi);
            if f1 <= 0.0 || f2 <= 0.0 || d1 <= 0.0 || d2 <= 0.0 {
                continue;
            }
            let matching = d1.min(d2);
            let rows = matching * (f1 / d1) * (f2 / d2);
            if rows <= 0.0 {
                continue;
            }
            out_rows += rows;
            out_buckets.push(Bucket {
                lo,
                hi,
                freq: rows,
                distinct: matching,
            });
        }
        self.finish_join(other, out_buckets, out_rows)
    }

    /// Shared tail of both join paths: selectivity normalization and the
    /// output-size bound.
    fn finish_join(
        &self,
        other: &Histogram,
        out_buckets: Vec<Bucket>,
        out_rows: f64,
    ) -> JoinResult {
        let denom = self.total_rows() * other.total_rows();
        let selectivity = if denom == 0.0 {
            0.0
        } else {
            (out_rows / denom).clamp(0.0, 1.0)
        };
        JoinResult {
            selectivity,
            histogram: Histogram::new(merge_adjacent(out_buckets), 0.0),
        }
    }
}

/// Computes the sorted, disjoint segments covering the union of two bucket
/// lists, split at every boundary of either.
fn segment_boundaries(a: &[Bucket], b: &[Bucket]) -> Vec<(i64, i64)> {
    let mut cuts: Vec<i64> = Vec::with_capacity(2 * (a.len() + b.len()));
    for bucket in a.iter().chain(b) {
        cuts.push(bucket.lo);
        // Segment ends are exclusive at `hi + 1` so both `lo` starts and
        // post-`hi` starts become cut points.
        cuts.push(bucket.hi.saturating_add(1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut segs = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1] - 1);
        if lo <= hi {
            segs.push((lo, hi));
        }
    }
    segs
}

/// Frequency and distinct mass of the (single, by construction) bucket
/// overlapping `[lo, hi]`, scaled by the overlap fraction.
fn segment_mass(buckets: &[Bucket], lo: i64, hi: i64) -> (f64, f64) {
    // Segments never straddle a bucket boundary, so at most one bucket
    // overlaps. Binary search for it.
    let idx = buckets.partition_point(|b| b.hi < lo);
    match buckets.get(idx) {
        Some(b) if b.lo <= hi => {
            let frac = b.overlap_fraction(lo, hi);
            (b.freq * frac, (b.distinct * frac).min(span_f64(lo, hi)))
        }
        _ => (0.0, 0.0),
    }
}

/// Merges adjacent output buckets to bound the result size (keeps result
/// histograms from growing unboundedly through chains of joins).
fn merge_adjacent(buckets: Vec<Bucket>) -> Vec<Bucket> {
    const MAX_BUCKETS: usize = 512;
    if buckets.len() <= MAX_BUCKETS {
        return buckets;
    }
    let group = buckets.len().div_ceil(MAX_BUCKETS);
    buckets
        .chunks(group)
        .map(|chunk| Bucket {
            lo: chunk[0].lo,
            hi: chunk[chunk.len() - 1].hi,
            freq: chunk.iter().map(|b| b.freq).sum(),
            distinct: chunk.iter().map(|b| b.distinct).sum(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist(lo: i64, hi: i64, rows: f64) -> Histogram {
        Histogram::new(
            vec![Bucket {
                lo,
                hi,
                freq: rows,
                distinct: (hi - lo + 1) as f64,
            }],
            0.0,
        )
    }

    #[test]
    fn range_selectivity_on_uniform_data() {
        let h = uniform_hist(1, 100, 1000.0);
        assert!((h.range_selectivity(1, 100) - 1.0).abs() < 1e-12);
        assert!((h.range_selectivity(1, 50) - 0.5).abs() < 1e-12);
        assert!((h.range_selectivity(26, 50) - 0.25).abs() < 1e-12);
        assert_eq!(h.range_selectivity(200, 300), 0.0);
        assert_eq!(h.range_selectivity(50, 40), 0.0, "inverted range");
    }

    #[test]
    fn eq_selectivity_uses_distinct_counts() {
        let h = Histogram::new(
            vec![Bucket {
                lo: 0,
                hi: 9,
                freq: 100.0,
                distinct: 5.0,
            }],
            0.0,
        );
        assert!((h.eq_selectivity(3) - 0.2).abs() < 1e-12); // 100/5 / 100
        assert_eq!(h.eq_selectivity(42), 0.0);
    }

    #[test]
    fn nulls_dilute_selectivity() {
        let mut h = uniform_hist(1, 10, 50.0);
        assert!((h.range_selectivity(1, 10) - 1.0).abs() < 1e-12);
        h = Histogram::new(h.buckets().to_vec(), 50.0);
        assert!((h.range_selectivity(1, 10) - 0.5).abs() < 1e-12);
        assert_eq!(h.total_rows(), 100.0);
        assert_eq!(h.valid_rows(), 50.0);
    }

    #[test]
    fn cmp_selectivity_strict_vs_inclusive() {
        let h = uniform_hist(1, 10, 10.0);
        assert!((h.cmp_selectivity(5, true, false) - 0.5).abs() < 1e-12); // <= 5
        assert!((h.cmp_selectivity(5, true, true) - 0.4).abs() < 1e-12); // < 5
        assert!((h.cmp_selectivity(5, false, false) - 0.6).abs() < 1e-12); // >= 5
        assert!((h.cmp_selectivity(5, false, true) - 0.5).abs() < 1e-12); // > 5
    }

    #[test]
    fn join_of_identical_uniform_hists() {
        // 100 rows over 100 distinct values each side: each value matches,
        // output = 100 values × 1 × 1 = 100 rows; selectivity = 100/10000.
        let h = uniform_hist(1, 100, 100.0);
        let r = h.join(&h);
        assert!((r.selectivity - 0.01).abs() < 1e-12);
        assert!((r.histogram.valid_rows() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_respects_disjoint_domains() {
        let a = uniform_hist(1, 10, 10.0);
        let b = uniform_hist(100, 110, 10.0);
        let r = a.join(&b);
        assert_eq!(r.selectivity, 0.0);
        assert!(r.histogram.buckets().is_empty());
    }

    #[test]
    fn join_with_skewed_side() {
        // Left: 1000 rows all with value 5. Right: uniform 1..=10.
        let a = Histogram::new(
            vec![Bucket {
                lo: 5,
                hi: 5,
                freq: 1000.0,
                distinct: 1.0,
            }],
            0.0,
        );
        let b = uniform_hist(1, 10, 10.0);
        let r = a.join(&b);
        // value 5 matches: 1000 × 1 = 1000 rows; sel = 1000/(1000·10) = 0.1
        assert!((r.selectivity - 0.1).abs() < 1e-12);
        let h3 = &r.histogram;
        assert_eq!(h3.buckets().len(), 1);
        assert!((h3.valid_rows() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn join_null_rows_do_not_match_but_stay_in_denominator() {
        let a = Histogram::new(
            vec![Bucket {
                lo: 1,
                hi: 10,
                freq: 50.0,
                distinct: 10.0,
            }],
            50.0,
        );
        let b = uniform_hist(1, 10, 10.0);
        let r = a.join(&b);
        // matches: 10 values × 5 × 1 = 50 rows; denom = 100 × 10.
        assert!((r.selectivity - 0.05).abs() < 1e-12);
    }

    #[test]
    fn restrict_keeps_only_overlap() {
        let h = uniform_hist(1, 100, 1000.0);
        let r = h.restrict(41, 60);
        assert_eq!(r.buckets().len(), 1);
        assert!((r.valid_rows() - 200.0).abs() < 1e-9);
        assert_eq!(r.bounds(), Some((41, 60)));
        assert_eq!(r.null_count(), 0.0);
    }

    #[test]
    fn scale_halves_mass() {
        let h = Histogram::new(
            vec![Bucket {
                lo: 1,
                hi: 10,
                freq: 100.0,
                distinct: 10.0,
            }],
            20.0,
        );
        let s = h.scale(0.5);
        assert!((s.valid_rows() - 50.0).abs() < 1e-9);
        assert!((s.null_count() - 10.0).abs() < 1e-9);
        // Distinct cannot exceed remaining rows.
        assert!(s.buckets()[0].distinct <= 50.0);
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = Histogram::empty();
        assert_eq!(h.range_selectivity(0, 10), 0.0);
        assert_eq!(h.eq_selectivity(0), 0.0);
        assert_eq!(h.cmp_selectivity(0, true, false), 0.0);
        assert_eq!(h.join(&h).selectivity, 0.0);
        assert_eq!(h.bounds(), None);
    }

    #[test]
    fn segments_split_at_all_boundaries() {
        let a = vec![Bucket {
            lo: 0,
            hi: 9,
            freq: 1.0,
            distinct: 1.0,
        }];
        let b = vec![Bucket {
            lo: 5,
            hi: 14,
            freq: 1.0,
            distinct: 1.0,
        }];
        let segs = segment_boundaries(&a, &b);
        assert_eq!(segs, vec![(0, 4), (5, 9), (10, 14)]);
    }

    /// Reference implementations of the kernels as the pre-CDF full scans,
    /// for pinning the binary-search + CDF rewrite against.
    fn range_rows_scan(h: &Histogram, lo: i64, hi: i64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        h.buckets
            .iter()
            .map(|b| b.freq * b.overlap_fraction(lo, hi))
            .sum()
    }

    fn eq_rows_scan(h: &Histogram, v: i64) -> f64 {
        match h.buckets.iter().find(|b| b.lo <= v && v <= b.hi) {
            Some(b) if b.distinct > 0.0 => b.freq / b.distinct.max(1.0),
            _ => 0.0,
        }
    }

    /// Deterministic pseudo-random histogram: sorted disjoint buckets with
    /// gaps, fractional freqs, occasional zero-freq buckets.
    fn lcg_hist(state: &mut u64, max_buckets: usize) -> Histogram {
        let next = move |s: &mut u64| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*s >> 33) as i64
        };
        let nb = (next(state).unsigned_abs() as usize) % max_buckets + 1;
        let mut buckets = Vec::with_capacity(nb);
        let mut lo = -(next(state).rem_euclid(50));
        for _ in 0..nb {
            let width = next(state).rem_euclid(20) + 1;
            let hi = lo + width - 1;
            let freq = (next(state).rem_euclid(10_000) as f64) / 3.0;
            let distinct = ((next(state).rem_euclid(width) + 1) as f64).min(freq.max(1.0));
            buckets.push(Bucket {
                lo,
                hi,
                freq,
                distinct,
            });
            lo = hi + 1 + next(state).rem_euclid(7);
        }
        Histogram::new(buckets, (next(state).rem_euclid(100) as f64) / 2.0)
    }

    /// CDF `range_rows` vs the full-scan reference: deviation is bounded by
    /// prefix-subtraction rounding (≲ `b·ε` relative), pinned here at a
    /// 1e-12 relative tolerance. Totals and `eq_rows` must be exact.
    #[test]
    fn cdf_kernels_match_scan_reference_within_summation_order() {
        let mut state = 0x5EED_1234_ABCD_0001u64;
        for case in 0..400 {
            let h = lcg_hist(&mut state, 40);
            let (dom_lo, dom_hi) = h.bounds().expect("non-empty by construction");
            // Totals are bit-identical: the CDF accumulates in scan order.
            let freq_scan: f64 = h.buckets.iter().map(|b| b.freq).sum();
            let distinct_scan: f64 = h.buckets.iter().map(|b| b.distinct).sum();
            assert_eq!(h.valid_rows().to_bits(), freq_scan.to_bits(), "case {case}");
            assert_eq!(
                h.distinct_values().to_bits(),
                distinct_scan.to_bits(),
                "case {case}"
            );
            for probe in 0..40 {
                let span = dom_hi - dom_lo;
                let a = dom_lo - 3 + (probe * 7919) % (span + 7);
                let b = dom_lo - 3 + (probe * 104729) % (span + 7);
                let (lo, hi) = (a.min(b), a.max(b));
                let fast = h.range_rows(lo, hi);
                let slow = range_rows_scan(&h, lo, hi);
                let tol = 1e-12 * slow.abs().max(1.0);
                assert!(
                    (fast - slow).abs() <= tol,
                    "case {case} range [{lo},{hi}]: fast {fast} vs scan {slow}"
                );
                // Equality kernel has no arithmetic change: exact bits.
                assert_eq!(
                    h.eq_rows(a).to_bits(),
                    eq_rows_scan(&h, a).to_bits(),
                    "case {case} eq {a}"
                );
            }
            // Degenerate probes: outside the domain, inverted, single value.
            assert_eq!(h.range_rows(dom_hi + 10, dom_hi + 20), 0.0);
            assert_eq!(h.range_rows(5, 4), 0.0);
            assert_eq!(
                h.range_rows(dom_lo, dom_lo).to_bits(),
                range_rows_scan(&h, dom_lo, dom_lo).to_bits()
            );
        }
    }

    /// The merge-scan join kernel against the reference path: identical
    /// segments, identical accumulation order, so every output must match
    /// bit for bit — including on histograms with gaps, adjacent buckets,
    /// fractional masses, and disjoint domains.
    #[test]
    fn merge_scan_join_is_bit_identical_to_reference() {
        let mut state = 0x7AB1E_5EED_0042u64;
        for case in 0..300 {
            let a = lcg_hist(&mut state, 30);
            let b = lcg_hist(&mut state, 30);
            let fast = a.join(&b);
            let slow = a.join_reference(&b);
            assert_eq!(
                fast.selectivity.to_bits(),
                slow.selectivity.to_bits(),
                "case {case} selectivity"
            );
            assert_eq!(
                fast.histogram, slow.histogram,
                "case {case} H3 buckets differ"
            );
            let fb = fast.histogram.buckets();
            let sb = slow.histogram.buckets();
            for (x, y) in fb.iter().zip(sb) {
                assert_eq!(x.freq.to_bits(), y.freq.to_bits(), "case {case} freq");
                assert_eq!(
                    x.distinct.to_bits(),
                    y.distinct.to_bits(),
                    "case {case} distinct"
                );
            }
        }
        // Self-join of adjacent-bucket histograms exercises the shared-cut
        // advance explicitly.
        let h = Histogram::new(
            vec![
                Bucket {
                    lo: 0,
                    hi: 9,
                    freq: 12.5,
                    distinct: 7.0,
                },
                Bucket {
                    lo: 10,
                    hi: 10,
                    freq: 3.0,
                    distinct: 1.0,
                },
                Bucket {
                    lo: 11,
                    hi: 30,
                    freq: 8.0,
                    distinct: 5.0,
                },
            ],
            2.0,
        );
        let fast = h.join(&h);
        let slow = h.join_reference(&h);
        assert_eq!(fast.selectivity.to_bits(), slow.selectivity.to_bits());
        assert_eq!(fast.histogram, slow.histogram);
    }

    #[test]
    fn serde_wire_format_is_buckets_and_null_count_only() {
        let h = uniform_hist(1, 10, 40.0);
        let v = serde::Serialize::to_value(&h);
        let fields = v.as_object().expect("object");
        let names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            names,
            ["buckets", "null_count"],
            "derived CDFs stay off the wire"
        );
        let back = <Histogram as serde::Deserialize>::from_value(&v).expect("roundtrip");
        assert_eq!(back, h);
        // The roundtripped histogram rebuilt its CDFs.
        assert_eq!(back.valid_rows().to_bits(), h.valid_rows().to_bits());
        assert_eq!(
            back.range_rows(2, 9).to_bits(),
            h.range_rows(2, 9).to_bits()
        );
    }

    #[test]
    fn merge_adjacent_preserves_mass() {
        let buckets: Vec<Bucket> = (0..2000)
            .map(|i| Bucket {
                lo: 2 * i,
                hi: 2 * i + 1,
                freq: 1.0,
                distinct: 1.0,
            })
            .collect();
        let merged = merge_adjacent(buckets);
        assert!(merged.len() <= 512);
        let mass: f64 = merged.iter().map(|b| b.freq).sum();
        assert!((mass - 2000.0).abs() < 1e-9);
    }
}

//! Histogram representation, estimation, and the histogram join.

/// One histogram bucket over the inclusive value range `[lo, hi]`.
///
/// `freq` is the (possibly fractional, after scaling) number of rows falling
/// in the range; `distinct` the estimated number of distinct values present.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound (`hi >= lo`).
    pub hi: i64,
    /// Row count in the bucket.
    pub freq: f64,
    /// Distinct-value count in the bucket (`0 < distinct <= width`).
    pub distinct: f64,
}

/// Number of integer values in the inclusive range `[lo, hi]`, as `f64`,
/// overflow-safe for the full `i64` domain.
pub(crate) fn span_f64(lo: i64, hi: i64) -> f64 {
    (hi as i128 - lo as i128 + 1) as f64
}

impl Bucket {
    /// Number of integer values covered by the bucket.
    pub fn width(&self) -> f64 {
        span_f64(self.lo, self.hi)
    }

    /// Fraction of this bucket's value range that overlaps `[lo, hi]`
    /// (inclusive), under the continuous-values assumption.
    fn overlap_fraction(&self, lo: i64, hi: i64) -> f64 {
        let o_lo = self.lo.max(lo);
        let o_hi = self.hi.min(hi);
        if o_lo > o_hi {
            0.0
        } else {
            span_f64(o_lo, o_hi) / self.width()
        }
    }
}

/// A unidimensional histogram over an `i64` attribute.
///
/// Bucket ranges are disjoint and sorted ascending; gaps between buckets
/// denote value ranges with no rows. `null_count` rows have NULL in the
/// attribute and live outside every bucket.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    null_count: f64,
}

/// Result of a histogram equi-join (§3.3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinResult {
    /// `Sel(x = y)` relative to the cross product of the two inputs: the
    /// estimated join output size divided by `|H1 rows| · |H2 rows|`.
    pub selectivity: f64,
    /// `H3`: distribution of the (shared) join attribute over the join
    /// output — usable to estimate further predicates on that attribute.
    pub histogram: Histogram,
}

impl Histogram {
    /// Creates a histogram from buckets (must be sorted, disjoint, and
    /// well-formed; checked with debug assertions) and a NULL count.
    pub fn new(buckets: Vec<Bucket>, null_count: f64) -> Self {
        debug_assert!(buckets.iter().all(|b| b.lo <= b.hi));
        debug_assert!(buckets.iter().all(|b| b.freq >= 0.0 && b.distinct >= 0.0));
        debug_assert!(buckets.windows(2).all(|w| w[0].hi < w[1].lo));
        Histogram {
            buckets,
            null_count,
        }
    }

    /// An empty histogram (no rows at all).
    pub fn empty() -> Self {
        Histogram::default()
    }

    /// The buckets, ascending.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Rows with a NULL attribute value.
    pub fn null_count(&self) -> f64 {
        self.null_count
    }

    /// Rows with a non-NULL attribute value.
    pub fn valid_rows(&self) -> f64 {
        self.buckets.iter().map(|b| b.freq).sum()
    }

    /// Total rows described (valid + NULL) — the denominator of every
    /// selectivity this histogram reports.
    pub fn total_rows(&self) -> f64 {
        self.valid_rows() + self.null_count
    }

    /// Total distinct values represented.
    pub fn distinct_values(&self) -> f64 {
        self.buckets.iter().map(|b| b.distinct).sum()
    }

    /// Smallest and largest covered values.
    pub fn bounds(&self) -> Option<(i64, i64)> {
        Some((self.buckets.first()?.lo, self.buckets.last()?.hi))
    }

    /// Estimated number of rows with value in `[lo, hi]` (inclusive).
    pub fn range_rows(&self, lo: i64, hi: i64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        self.buckets
            .iter()
            .map(|b| b.freq * b.overlap_fraction(lo, hi))
            .sum()
    }

    /// Estimated selectivity of `lo <= value <= hi`, as a fraction of all
    /// rows (NULLs never qualify). Returns 0 for an empty histogram.
    pub fn range_selectivity(&self, lo: i64, hi: i64) -> f64 {
        let total = self.total_rows();
        if total == 0.0 {
            return 0.0;
        }
        (self.range_rows(lo, hi) / total).clamp(0.0, 1.0)
    }

    /// Estimated number of rows with value exactly `v` (freq/distinct within
    /// the covering bucket — the standard uniform-frequency assumption).
    pub fn eq_rows(&self, v: i64) -> f64 {
        match self.buckets.iter().find(|b| b.lo <= v && v <= b.hi) {
            Some(b) if b.distinct > 0.0 => b.freq / b.distinct.max(1.0),
            _ => 0.0,
        }
    }

    /// Estimated selectivity of `value = v`.
    pub fn eq_selectivity(&self, v: i64) -> f64 {
        let total = self.total_rows();
        if total == 0.0 {
            return 0.0;
        }
        (self.eq_rows(v) / total).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a one-sided comparison. `strict` excludes
    /// the boundary (`<` / `>` vs `<=` / `>=`); `less` selects the lower
    /// side.
    pub fn cmp_selectivity(&self, v: i64, less: bool, strict: bool) -> f64 {
        let Some((lo, hi)) = self.bounds() else {
            return 0.0;
        };
        if less {
            let end = if strict { v.saturating_sub(1) } else { v };
            self.range_selectivity(lo.min(end), end)
        } else {
            let start = if strict { v.saturating_add(1) } else { v };
            self.range_selectivity(start, hi.max(start))
        }
    }

    /// Multiplies every frequency by `factor` (NULLs included). Used when a
    /// histogram is rescaled to model a filtered/joined population.
    pub fn scale(&self, factor: f64) -> Histogram {
        debug_assert!(factor >= 0.0);
        Histogram {
            buckets: self
                .buckets
                .iter()
                .map(|b| {
                    let freq = b.freq * factor;
                    Bucket {
                        freq,
                        // Distinct values never grow and cannot exceed the
                        // remaining (possibly fractional) rows.
                        distinct: b.distinct.min(freq),
                        ..*b
                    }
                })
                .collect(),
            null_count: self.null_count * factor,
        }
    }

    /// Restricts the histogram to `[lo, hi]`, keeping only (parts of)
    /// buckets that overlap. Frequencies and distinct counts are reduced
    /// proportionally to the overlap.
    pub fn restrict(&self, lo: i64, hi: i64) -> Histogram {
        let mut buckets = Vec::new();
        for b in &self.buckets {
            let o_lo = b.lo.max(lo);
            let o_hi = b.hi.min(hi);
            if o_lo > o_hi {
                continue;
            }
            let frac = b.overlap_fraction(lo, hi);
            buckets.push(Bucket {
                lo: o_lo,
                hi: o_hi,
                freq: b.freq * frac,
                distinct: (b.distinct * frac).max(1.0).min(span_f64(o_lo, o_hi)),
            });
        }
        Histogram {
            buckets,
            null_count: 0.0,
        }
    }

    /// Histogram equi-join (§3.3). Aligns the two bucket sequences on the
    /// union of their boundaries; within each aligned segment the estimated
    /// number of matching distinct values is `min(d1, d2)` and each matching
    /// value contributes `(f1/d1)·(f2/d2)` output rows (uniform-frequency
    /// within segments, containment of the rarer value set).
    ///
    /// Returns the join selectivity relative to `|H1| · |H2|` (NULL rows
    /// never join, but they stay in the denominators) and the result
    /// distribution `H3` of the join attribute.
    pub fn join(&self, other: &Histogram) -> JoinResult {
        let mut out_buckets: Vec<Bucket> = Vec::new();
        let mut out_rows = 0.0f64;
        for (lo, hi) in segment_boundaries(&self.buckets, &other.buckets) {
            let (f1, d1) = segment_mass(&self.buckets, lo, hi);
            let (f2, d2) = segment_mass(&other.buckets, lo, hi);
            if f1 <= 0.0 || f2 <= 0.0 || d1 <= 0.0 || d2 <= 0.0 {
                continue;
            }
            let matching = d1.min(d2);
            let rows = matching * (f1 / d1) * (f2 / d2);
            if rows <= 0.0 {
                continue;
            }
            out_rows += rows;
            out_buckets.push(Bucket {
                lo,
                hi,
                freq: rows,
                distinct: matching,
            });
        }
        let denom = self.total_rows() * other.total_rows();
        let selectivity = if denom == 0.0 {
            0.0
        } else {
            (out_rows / denom).clamp(0.0, 1.0)
        };
        JoinResult {
            selectivity,
            histogram: Histogram::new(merge_adjacent(out_buckets), 0.0),
        }
    }
}

/// Computes the sorted, disjoint segments covering the union of two bucket
/// lists, split at every boundary of either.
fn segment_boundaries(a: &[Bucket], b: &[Bucket]) -> Vec<(i64, i64)> {
    let mut cuts: Vec<i64> = Vec::with_capacity(2 * (a.len() + b.len()));
    for bucket in a.iter().chain(b) {
        cuts.push(bucket.lo);
        // Segment ends are exclusive at `hi + 1` so both `lo` starts and
        // post-`hi` starts become cut points.
        cuts.push(bucket.hi.saturating_add(1));
    }
    cuts.sort_unstable();
    cuts.dedup();
    let mut segs = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1] - 1);
        if lo <= hi {
            segs.push((lo, hi));
        }
    }
    segs
}

/// Frequency and distinct mass of the (single, by construction) bucket
/// overlapping `[lo, hi]`, scaled by the overlap fraction.
fn segment_mass(buckets: &[Bucket], lo: i64, hi: i64) -> (f64, f64) {
    // Segments never straddle a bucket boundary, so at most one bucket
    // overlaps. Binary search for it.
    let idx = buckets.partition_point(|b| b.hi < lo);
    match buckets.get(idx) {
        Some(b) if b.lo <= hi => {
            let frac = b.overlap_fraction(lo, hi);
            (b.freq * frac, (b.distinct * frac).min(span_f64(lo, hi)))
        }
        _ => (0.0, 0.0),
    }
}

/// Merges adjacent output buckets to bound the result size (keeps result
/// histograms from growing unboundedly through chains of joins).
fn merge_adjacent(buckets: Vec<Bucket>) -> Vec<Bucket> {
    const MAX_BUCKETS: usize = 512;
    if buckets.len() <= MAX_BUCKETS {
        return buckets;
    }
    let group = buckets.len().div_ceil(MAX_BUCKETS);
    buckets
        .chunks(group)
        .map(|chunk| Bucket {
            lo: chunk[0].lo,
            hi: chunk[chunk.len() - 1].hi,
            freq: chunk.iter().map(|b| b.freq).sum(),
            distinct: chunk.iter().map(|b| b.distinct).sum(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_hist(lo: i64, hi: i64, rows: f64) -> Histogram {
        Histogram::new(
            vec![Bucket {
                lo,
                hi,
                freq: rows,
                distinct: (hi - lo + 1) as f64,
            }],
            0.0,
        )
    }

    #[test]
    fn range_selectivity_on_uniform_data() {
        let h = uniform_hist(1, 100, 1000.0);
        assert!((h.range_selectivity(1, 100) - 1.0).abs() < 1e-12);
        assert!((h.range_selectivity(1, 50) - 0.5).abs() < 1e-12);
        assert!((h.range_selectivity(26, 50) - 0.25).abs() < 1e-12);
        assert_eq!(h.range_selectivity(200, 300), 0.0);
        assert_eq!(h.range_selectivity(50, 40), 0.0, "inverted range");
    }

    #[test]
    fn eq_selectivity_uses_distinct_counts() {
        let h = Histogram::new(
            vec![Bucket {
                lo: 0,
                hi: 9,
                freq: 100.0,
                distinct: 5.0,
            }],
            0.0,
        );
        assert!((h.eq_selectivity(3) - 0.2).abs() < 1e-12); // 100/5 / 100
        assert_eq!(h.eq_selectivity(42), 0.0);
    }

    #[test]
    fn nulls_dilute_selectivity() {
        let mut h = uniform_hist(1, 10, 50.0);
        assert!((h.range_selectivity(1, 10) - 1.0).abs() < 1e-12);
        h = Histogram::new(h.buckets().to_vec(), 50.0);
        assert!((h.range_selectivity(1, 10) - 0.5).abs() < 1e-12);
        assert_eq!(h.total_rows(), 100.0);
        assert_eq!(h.valid_rows(), 50.0);
    }

    #[test]
    fn cmp_selectivity_strict_vs_inclusive() {
        let h = uniform_hist(1, 10, 10.0);
        assert!((h.cmp_selectivity(5, true, false) - 0.5).abs() < 1e-12); // <= 5
        assert!((h.cmp_selectivity(5, true, true) - 0.4).abs() < 1e-12); // < 5
        assert!((h.cmp_selectivity(5, false, false) - 0.6).abs() < 1e-12); // >= 5
        assert!((h.cmp_selectivity(5, false, true) - 0.5).abs() < 1e-12); // > 5
    }

    #[test]
    fn join_of_identical_uniform_hists() {
        // 100 rows over 100 distinct values each side: each value matches,
        // output = 100 values × 1 × 1 = 100 rows; selectivity = 100/10000.
        let h = uniform_hist(1, 100, 100.0);
        let r = h.join(&h);
        assert!((r.selectivity - 0.01).abs() < 1e-12);
        assert!((r.histogram.valid_rows() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_respects_disjoint_domains() {
        let a = uniform_hist(1, 10, 10.0);
        let b = uniform_hist(100, 110, 10.0);
        let r = a.join(&b);
        assert_eq!(r.selectivity, 0.0);
        assert!(r.histogram.buckets().is_empty());
    }

    #[test]
    fn join_with_skewed_side() {
        // Left: 1000 rows all with value 5. Right: uniform 1..=10.
        let a = Histogram::new(
            vec![Bucket {
                lo: 5,
                hi: 5,
                freq: 1000.0,
                distinct: 1.0,
            }],
            0.0,
        );
        let b = uniform_hist(1, 10, 10.0);
        let r = a.join(&b);
        // value 5 matches: 1000 × 1 = 1000 rows; sel = 1000/(1000·10) = 0.1
        assert!((r.selectivity - 0.1).abs() < 1e-12);
        let h3 = &r.histogram;
        assert_eq!(h3.buckets().len(), 1);
        assert!((h3.valid_rows() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn join_null_rows_do_not_match_but_stay_in_denominator() {
        let a = Histogram::new(
            vec![Bucket {
                lo: 1,
                hi: 10,
                freq: 50.0,
                distinct: 10.0,
            }],
            50.0,
        );
        let b = uniform_hist(1, 10, 10.0);
        let r = a.join(&b);
        // matches: 10 values × 5 × 1 = 50 rows; denom = 100 × 10.
        assert!((r.selectivity - 0.05).abs() < 1e-12);
    }

    #[test]
    fn restrict_keeps_only_overlap() {
        let h = uniform_hist(1, 100, 1000.0);
        let r = h.restrict(41, 60);
        assert_eq!(r.buckets().len(), 1);
        assert!((r.valid_rows() - 200.0).abs() < 1e-9);
        assert_eq!(r.bounds(), Some((41, 60)));
        assert_eq!(r.null_count(), 0.0);
    }

    #[test]
    fn scale_halves_mass() {
        let h = Histogram::new(
            vec![Bucket {
                lo: 1,
                hi: 10,
                freq: 100.0,
                distinct: 10.0,
            }],
            20.0,
        );
        let s = h.scale(0.5);
        assert!((s.valid_rows() - 50.0).abs() < 1e-9);
        assert!((s.null_count() - 10.0).abs() < 1e-9);
        // Distinct cannot exceed remaining rows.
        assert!(s.buckets()[0].distinct <= 50.0);
    }

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = Histogram::empty();
        assert_eq!(h.range_selectivity(0, 10), 0.0);
        assert_eq!(h.eq_selectivity(0), 0.0);
        assert_eq!(h.cmp_selectivity(0, true, false), 0.0);
        assert_eq!(h.join(&h).selectivity, 0.0);
        assert_eq!(h.bounds(), None);
    }

    #[test]
    fn segments_split_at_all_boundaries() {
        let a = vec![Bucket {
            lo: 0,
            hi: 9,
            freq: 1.0,
            distinct: 1.0,
        }];
        let b = vec![Bucket {
            lo: 5,
            hi: 14,
            freq: 1.0,
            distinct: 1.0,
        }];
        let segs = segment_boundaries(&a, &b);
        assert_eq!(segs, vec![(0, 4), (5, 9), (10, 14)]);
    }

    #[test]
    fn merge_adjacent_preserves_mass() {
        let buckets: Vec<Bucket> = (0..2000)
            .map(|i| Bucket {
                lo: 2 * i,
                hi: 2 * i + 1,
                freq: 1.0,
                distinct: 1.0,
            })
            .collect();
        let merged = merge_adjacent(buckets);
        assert!(merged.len() <= 512);
        let mass: f64 = merged.iter().map(|b| b.freq).sum();
        assert!((mass - 2000.0).abs() < 1e-9);
    }
}

//! Incremental histogram maintenance under row deltas.
//!
//! A histogram built from a column drifts as the column mutates. Rebuilding
//! from scratch on every batch is exact but costs a full scan plus a
//! maxDiff pass; [`merge_delta`] instead folds a batch's value flow
//! (inserted values, deleted values, NULL-count delta) directly into the
//! existing buckets:
//!
//! * an inserted value lands in its covering bucket (`freq += 1`), or
//!   becomes a new singleton bucket when it falls in a gap;
//! * a deleted value drains one row from its covering bucket; emptied
//!   buckets are dropped. Deletes outside every bucket are ignored — for a
//!   histogram tracking the column they summarize, every stored value is
//!   covered, so this only happens when the histogram was already stale;
//! * NULLs move the `null_count` directly.
//!
//! The merged histogram keeps **total mass exact**: after a batch its
//! `total_rows()` equals the true row count. What degrades is *placement* —
//! singleton buckets are exact, but a value merged into a wide bucket
//! spreads its mass over the bucket under the continuous-values
//! assumption, and `distinct` counts are only clamped, not recounted. Each
//! merged op therefore perturbs any range estimate by at most one row,
//! which is the per-op staleness unit the live catalog tracks:
//! an estimate from a merged histogram is within
//! `error(at last rebuild) + ops_merged_since` rows of the truth.
//!
//! When singleton creation pushes the bucket count past `max_buckets`, the
//! two adjacent buckets with the least combined frequency merge until the
//! budget holds — the standard bounded-synopsis compromise (precision,
//! never mass, is what's lost).

use crate::histogram::{Bucket, Histogram};

/// Folds one batch of value changes into `base`, returning the maintained
/// histogram. `null_delta` is the net change to the NULL count; the bucket
/// count is capped at `max_buckets` (at least 1).
pub fn merge_delta(
    base: &Histogram,
    inserted: &[i64],
    deleted: &[i64],
    null_delta: i64,
    max_buckets: usize,
) -> Histogram {
    let mut buckets: Vec<Bucket> = base.buckets().to_vec();
    for &v in inserted {
        match covering(&buckets, v) {
            Ok(i) => buckets[i].freq += 1.0,
            Err(i) => buckets.insert(
                i,
                Bucket {
                    lo: v,
                    hi: v,
                    freq: 1.0,
                    distinct: 1.0,
                },
            ),
        }
    }
    for &v in deleted {
        if let Ok(i) = covering(&buckets, v) {
            let b = &mut buckets[i];
            b.freq = (b.freq - 1.0).max(0.0);
            b.distinct = b.distinct.min(b.freq.max(1.0));
            if b.freq <= 0.0 {
                buckets.remove(i);
            }
        }
    }
    cap_buckets(&mut buckets, max_buckets.max(1));
    let null_count = (base.null_count() + null_delta as f64).max(0.0);
    Histogram::new(buckets, null_count)
}

/// Index of the bucket covering `v` (`Ok`), or the insertion position for a
/// new singleton (`Err`).
fn covering(buckets: &[Bucket], v: i64) -> Result<usize, usize> {
    let i = buckets.partition_point(|b| b.hi < v);
    if i < buckets.len() && buckets[i].lo <= v {
        Ok(i)
    } else {
        Err(i)
    }
}

/// Merges adjacent buckets (least combined frequency first) until at most
/// `max_buckets` remain. Mass-preserving.
fn cap_buckets(buckets: &mut Vec<Bucket>, max_buckets: usize) {
    while buckets.len() > max_buckets {
        let mut best = 0;
        let mut best_mass = f64::INFINITY;
        for i in 0..buckets.len() - 1 {
            let mass = buckets[i].freq + buckets[i + 1].freq;
            if mass < best_mass {
                best_mass = mass;
                best = i;
            }
        }
        let right = buckets.remove(best + 1);
        let left = &mut buckets[best];
        left.hi = right.hi;
        left.freq += right.freq;
        left.distinct += right.distinct;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BuilderKind;

    fn exact(values: &[i64]) -> Histogram {
        BuilderKind::Exact.build(values, 0, usize::MAX)
    }

    #[test]
    fn insert_into_covering_bucket_adds_mass() {
        let h = exact(&[1, 1, 5]);
        let m = merge_delta(&h, &[1, 5, 5], &[], 0, 512);
        assert_eq!(m.eq_rows(1), 3.0);
        assert_eq!(m.eq_rows(5), 3.0);
        assert_eq!(m.total_rows(), 6.0);
    }

    #[test]
    fn insert_in_gap_creates_singleton() {
        let h = exact(&[1, 9]);
        let m = merge_delta(&h, &[4, 4], &[], 0, 512);
        assert_eq!(m.eq_rows(4), 2.0);
        assert_eq!(m.buckets().len(), 3);
        // Bucket order and disjointness must survive (Histogram::new
        // debug-asserts them, but check the lookup too).
        assert_eq!(m.eq_rows(1), 1.0);
        assert_eq!(m.eq_rows(9), 1.0);
    }

    #[test]
    fn delete_drains_and_drops_empty_buckets() {
        let h = exact(&[2, 2, 7]);
        let m = merge_delta(&h, &[], &[7, 2], 0, 512);
        assert_eq!(m.eq_rows(7), 0.0);
        assert_eq!(m.eq_rows(2), 1.0);
        assert_eq!(m.buckets().len(), 1);
        // Deleting a value no bucket covers is a no-op.
        let m2 = merge_delta(&m, &[], &[100], 0, 512);
        assert_eq!(m2.total_rows(), 1.0);
    }

    #[test]
    fn null_delta_moves_null_count() {
        let h = Histogram::new(vec![], 3.0);
        assert_eq!(merge_delta(&h, &[], &[], 2, 512).null_count(), 5.0);
        assert_eq!(merge_delta(&h, &[], &[], -5, 512).null_count(), 0.0);
    }

    #[test]
    fn total_mass_is_exact_under_churn() {
        let h = exact(&[10, 20, 20, 30, 40]);
        let m = merge_delta(&h, &[15, 25, 20], &[10, 40], 0, 512);
        assert_eq!(m.total_rows(), 6.0);
    }

    #[test]
    fn bucket_budget_is_enforced_without_losing_mass() {
        let h = exact(&[0]);
        let inserts: Vec<i64> = (1..100).map(|i| i * 10).collect();
        let m = merge_delta(&h, &inserts, &[], 0, 8);
        assert_eq!(m.buckets().len(), 8);
        assert_eq!(m.total_rows(), 100.0);
    }

    #[test]
    fn empty_base_accumulates_from_scratch() {
        let m = merge_delta(&Histogram::empty(), &[5, 5, 1], &[], 1, 512);
        assert_eq!(m.eq_rows(5), 2.0);
        assert_eq!(m.eq_rows(1), 1.0);
        assert_eq!(m.null_count(), 1.0);
    }
}

//! Property tests pinning the `O(log b)` CDF kernels (`eq_rows`,
//! `range_rows`, `join`) to naive `O(b)` bucket scans on random histograms.
//!
//! The contract per kernel:
//!
//! * `eq_rows` — **bit-identical** to a linear search for the covering
//!   bucket: the rewrite only changed how the bucket is located, not the
//!   `freq / distinct` arithmetic.
//! * `range_rows` — **bit-identical** to a linear scan that finds the
//!   overlap run by walking the buckets, accumulates the same left-to-right
//!   prefix sums `Histogram::new` builds, and applies the same three-term
//!   formula. Versus a *pure* sum-of-overlaps scan the prefix subtraction
//!   can differ by accumulated rounding, so that comparison gets a `1e-12`
//!   relative tolerance (the documented caveat on `range_rows`).
//! * `join` — **bit-identical** to a segment-walk that locates each
//!   segment's (single, by construction) overlapping bucket by linear scan
//!   instead of binary search: same cut points, same per-segment arithmetic,
//!   same accumulation order.
//!
//! Histograms are generated with gaps, adjacent buckets, zero-frequency
//! buckets, fractional frequencies, and NULL rows; the empty histogram and
//! the single-bucket histogram are both reachable by the strategy and
//! pinned again by dedicated edge-case tests.

use proptest::prelude::*;
use sqe_histogram::{Bucket, Histogram};

/// Overflow-safe count of integer values in `[lo, hi]`, mirroring the
/// crate-private `span_f64`.
fn span(lo: i64, hi: i64) -> f64 {
    (hi as i128 - lo as i128 + 1) as f64
}

/// Mirror of the private `Bucket::overlap_fraction` — the naive references
/// must use the exact same arithmetic for bit-identity claims to be
/// meaningful.
fn overlap_fraction(b: &Bucket, lo: i64, hi: i64) -> f64 {
    let o_lo = b.lo.max(lo);
    let o_hi = b.hi.min(hi);
    if o_lo > o_hi {
        0.0
    } else {
        span(o_lo, o_hi) / span(b.lo, b.hi)
    }
}

/// Naive `eq_rows`: linear search for the covering bucket.
fn eq_rows_naive(h: &Histogram, v: i64) -> f64 {
    match h.buckets().iter().find(|b| b.lo <= v && v <= b.hi) {
        Some(b) if b.distinct > 0.0 => b.freq / b.distinct.max(1.0),
        _ => 0.0,
    }
}

/// Naive `range_rows`: locates the overlap run by walking the buckets,
/// rebuilds the frequency prefix sums with the same left-to-right
/// accumulation as `Histogram::new`, and applies the same three-term
/// formula as the kernel. `O(b)` and bit-identical.
fn range_rows_naive(h: &Histogram, lo: i64, hi: i64) -> f64 {
    if lo > hi {
        return 0.0;
    }
    let bs = h.buckets();
    let a = bs.iter().take_while(|b| b.hi < lo).count();
    let b = bs.iter().take_while(|b| b.lo <= hi).count();
    if a >= b {
        return 0.0;
    }
    let first = &bs[a];
    if b - a == 1 {
        return first.freq * overlap_fraction(first, lo, hi);
    }
    let mut cdf = Vec::with_capacity(bs.len() + 1);
    let mut acc = 0.0f64;
    cdf.push(acc);
    for bucket in bs {
        acc += bucket.freq;
        cdf.push(acc);
    }
    let last = &bs[b - 1];
    first.freq * overlap_fraction(first, lo, hi)
        + (cdf[b - 1] - cdf[a + 1])
        + last.freq * overlap_fraction(last, lo, hi)
}

/// Pure sum-of-overlaps scan — the textbook `O(b)` kernel without any
/// prefix-sum structure. Only tolerance-equal to the CDF kernel.
fn range_rows_overlap_sum(h: &Histogram, lo: i64, hi: i64) -> f64 {
    if lo > hi {
        return 0.0;
    }
    h.buckets()
        .iter()
        .map(|b| b.freq * overlap_fraction(b, lo, hi))
        .sum()
}

/// Naive histogram join: same union-of-boundaries segmentation and the same
/// per-segment containment arithmetic as `Histogram::join`, with the
/// segment's overlapping bucket found by linear scan.
fn join_naive(h1: &Histogram, h2: &Histogram) -> (f64, Vec<Bucket>) {
    let mut cuts: Vec<i64> = Vec::new();
    for b in h1.buckets().iter().chain(h2.buckets()) {
        cuts.push(b.lo);
        cuts.push(b.hi.saturating_add(1));
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mass = |buckets: &[Bucket], lo: i64, hi: i64| -> (f64, f64) {
        match buckets.iter().find(|b| b.lo <= hi && lo <= b.hi) {
            Some(b) => {
                let frac = overlap_fraction(b, lo, hi);
                (b.freq * frac, (b.distinct * frac).min(span(lo, hi)))
            }
            None => (0.0, 0.0),
        }
    };

    let mut out_buckets = Vec::new();
    let mut out_rows = 0.0f64;
    for w in cuts.windows(2) {
        let (lo, hi) = (w[0], w[1] - 1);
        if lo > hi {
            continue;
        }
        let (f1, d1) = mass(h1.buckets(), lo, hi);
        let (f2, d2) = mass(h2.buckets(), lo, hi);
        if f1 <= 0.0 || f2 <= 0.0 || d1 <= 0.0 || d2 <= 0.0 {
            continue;
        }
        let matching = d1.min(d2);
        let rows = matching * (f1 / d1) * (f2 / d2);
        if rows <= 0.0 {
            continue;
        }
        out_rows += rows;
        out_buckets.push(Bucket {
            lo,
            hi,
            freq: rows,
            distinct: matching,
        });
    }
    let denom = h1.total_rows() * h2.total_rows();
    let selectivity = if denom == 0.0 {
        0.0
    } else {
        (out_rows / denom).clamp(0.0, 1.0)
    };
    (selectivity, out_buckets)
}

/// Strategy: a random well-formed histogram. `0..n` buckets (so the empty
/// and single-bucket cases are generated, not just hand-pinned), gaps of
/// `0..8` (gap 0 = adjacent buckets), widths `1..20`, fractional
/// frequencies including exact zeros, `distinct` clamped to the bucket
/// width, and a fractional NULL count.
fn arb_hist() -> impl Strategy<Value = Histogram> {
    (
        prop::collection::vec((0i64..8, 1i64..20, 0u32..30_000u32, 0u32..32u32), 0..8),
        -50i64..50,
        0u32..100u32,
    )
        .prop_map(|(specs, start, nulls)| {
            let mut lo = start;
            let mut buckets = Vec::with_capacity(specs.len());
            for (gap, width, freq_thirds, distinct_seed) in specs {
                lo += gap;
                let hi = lo + width - 1;
                let freq = freq_thirds as f64 / 3.0;
                let distinct = (distinct_seed as i64 % width + 1) as f64;
                buckets.push(Bucket {
                    lo,
                    hi,
                    freq,
                    distinct,
                });
                lo = hi + 1;
            }
            Histogram::new(buckets, nulls as f64 / 2.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `eq_rows` is bit-identical to the linear covering-bucket scan, for
    /// probes inside buckets, in gaps, and outside the domain.
    #[test]
    fn eq_rows_bit_identical_to_linear_scan(
        h in arb_hist(),
        probes in prop::collection::vec(-80i64..260, 1..24),
    ) {
        for v in probes {
            prop_assert_eq!(
                h.eq_rows(v).to_bits(),
                eq_rows_naive(&h, v).to_bits(),
                "eq_rows({}) diverged from the O(b) scan", v
            );
        }
        // Bucket boundaries are the interesting probe set: hit every one.
        for b in h.buckets() {
            for v in [b.lo, b.hi, b.lo - 1, b.hi + 1] {
                prop_assert_eq!(h.eq_rows(v).to_bits(), eq_rows_naive(&h, v).to_bits());
            }
        }
    }

    /// `range_rows` is bit-identical to the naive prefix-sum scan, and
    /// within 1e-12 relative of the pure sum-of-overlaps scan.
    #[test]
    fn range_rows_bit_identical_to_prefix_scan(
        h in arb_hist(),
        probes in prop::collection::vec((-80i64..260, -80i64..260), 1..24),
    ) {
        let mut endpoints: Vec<(i64, i64)> = probes
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        // Inverted ranges and exact bucket-boundary ranges too.
        endpoints.extend(probes.iter().map(|&(a, b)| (a.max(b), a.min(b) - 1)));
        for b in h.buckets() {
            endpoints.push((b.lo, b.hi));
            endpoints.push((b.lo + 1, b.hi - 1));
            endpoints.push((b.hi, b.hi));
        }
        for (lo, hi) in endpoints {
            let fast = h.range_rows(lo, hi);
            let naive = range_rows_naive(&h, lo, hi);
            prop_assert_eq!(
                fast.to_bits(),
                naive.to_bits(),
                "range_rows({}, {}) diverged from the O(b) prefix scan: {} vs {}",
                lo, hi, fast, naive
            );
            let summed = range_rows_overlap_sum(&h, lo, hi);
            let tol = 1e-12 * summed.abs().max(1.0);
            prop_assert!(
                (fast - summed).abs() <= tol,
                "range_rows({}, {}) drifted past rounding from the overlap sum: {} vs {}",
                lo, hi, fast, summed
            );
        }
    }

    /// The histogram join (selectivity *and* the `H3` result buckets) is
    /// bit-identical to the linear segment walk.
    #[test]
    fn join_bit_identical_to_linear_segment_walk(
        h1 in arb_hist(),
        h2 in arb_hist(),
    ) {
        let fast = h1.join(&h2);
        let (naive_sel, naive_buckets) = join_naive(&h1, &h2);
        prop_assert_eq!(
            fast.selectivity.to_bits(),
            naive_sel.to_bits(),
            "join selectivity diverged: {} vs {}", fast.selectivity, naive_sel
        );
        let fast_buckets = fast.histogram.buckets();
        prop_assert_eq!(fast_buckets.len(), naive_buckets.len());
        for (f, n) in fast_buckets.iter().zip(&naive_buckets) {
            prop_assert_eq!(f.lo, n.lo);
            prop_assert_eq!(f.hi, n.hi);
            prop_assert_eq!(f.freq.to_bits(), n.freq.to_bits());
            prop_assert_eq!(f.distinct.to_bits(), n.distinct.to_bits());
        }
        // Join is symmetric in selectivity denominator shape but not
        // necessarily in bits — pin the swapped call against its own naive
        // walk rather than against the forward call.
        let back = h2.join(&h1);
        let (back_sel, _) = join_naive(&h2, &h1);
        prop_assert_eq!(back.selectivity.to_bits(), back_sel.to_bits());
    }
}

#[test]
fn empty_histogram_kernels_agree_with_scans() {
    let h = Histogram::empty();
    assert_eq!(h.eq_rows(0).to_bits(), eq_rows_naive(&h, 0).to_bits());
    assert_eq!(
        h.range_rows(-5, 5).to_bits(),
        range_rows_naive(&h, -5, 5).to_bits()
    );
    assert_eq!(h.range_rows(-5, 5), 0.0);
    let (sel, buckets) = join_naive(&h, &h);
    let fast = h.join(&h);
    assert_eq!(fast.selectivity.to_bits(), sel.to_bits());
    assert!(fast.histogram.buckets().is_empty() && buckets.is_empty());
}

#[test]
fn zero_frequency_bucket_estimates_zero_everywhere() {
    let h = Histogram::new(
        vec![Bucket {
            lo: 10,
            hi: 19,
            freq: 0.0,
            distinct: 1.0,
        }],
        0.0,
    );
    for v in 9..=20 {
        assert_eq!(h.eq_rows(v).to_bits(), eq_rows_naive(&h, v).to_bits());
        assert_eq!(h.eq_rows(v), 0.0);
    }
    assert_eq!(
        h.range_rows(10, 19).to_bits(),
        range_rows_naive(&h, 10, 19).to_bits()
    );
    assert_eq!(h.range_rows(10, 19), 0.0);
}

#[test]
fn single_bucket_boundaries_are_exact() {
    let h = Histogram::new(
        vec![Bucket {
            lo: -3,
            hi: 6,
            freq: 100.0 / 3.0,
            distinct: 7.0,
        }],
        5.0,
    );
    for (lo, hi) in [
        (-3, 6),
        (-3, -3),
        (6, 6),
        (-10, 10),
        (0, 3),
        (7, 9),
        (-5, -4),
    ] {
        assert_eq!(
            h.range_rows(lo, hi).to_bits(),
            range_rows_naive(&h, lo, hi).to_bits(),
            "range [{lo},{hi}]"
        );
        // One bucket: the prefix-sum and overlap-sum paths coincide exactly.
        assert_eq!(
            h.range_rows(lo, hi).to_bits(),
            range_rows_overlap_sum(&h, lo, hi).to_bits(),
            "range [{lo},{hi}]"
        );
    }
    for v in -5..=8 {
        assert_eq!(h.eq_rows(v).to_bits(), eq_rows_naive(&h, v).to_bits());
    }
}

//! # sqe-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) plus
//! the motivating example of §1:
//!
//! | binary           | paper artifact |
//! |------------------|----------------|
//! | `motivating`     | Figures 1–2: the skewed lineitem/orders/customer scenario |
//! | `lemma1`         | Lemma 1: decomposition counts vs bounds |
//! | `fig5`           | Figure 5: per-query error, GVM vs GS-nInd scatter |
//! | `fig6`           | Figure 6: view-matching calls, GS vs GVM |
//! | `fig7`           | Figure 7(a–c): avg absolute error by technique × SIT pool |
//! | `fig8`           | Figure 8(a–c): `getSelectivity` runtime split |
//! | `optimizer_demo` | §4: memo-coupled estimation changing chosen plans |
//!
//! Shared infrastructure lives here: the standard experimental [`setup`],
//! the per-technique sub-query evaluation [`run`], tiny [`args`] parsing,
//! and table/JSON [`report`]ing.

pub mod args;
pub mod report;
pub mod run;
pub mod setup;

pub use args::Args;
pub use run::{eval_query, QueryEval, Technique};
pub use setup::{Setup, SetupConfig};

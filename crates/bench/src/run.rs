//! Per-technique sub-query evaluation — the §5 "Metrics" procedure.
//!
//! For each workload query the paper (i) estimates the cardinality of
//! *every sub-query*, (ii) computes each sub-query's actual cardinality,
//! and (iii) averages the absolute error; the per-workload number is the
//! mean over queries. [`eval_query`] implements one query's worth of that
//! for a chosen [`Technique`].

use std::time::{Duration, Instant};

use sqe_core::{
    ErrorMode, GreedyViewMatching, NoSitEstimator, PredSet, QueryContext, SelectivityEstimator,
    SitCatalog,
};
use sqe_engine::{CardinalityOracle, Database, SpjQuery};

/// An estimation technique from §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Base-table statistics only (a conventional optimizer).
    NoSit,
    /// Greedy view matching of \[4\].
    Gvm,
    /// `getSelectivity` with the given error function.
    Gs(ErrorMode),
}

impl Technique {
    /// Display label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Technique::NoSit => "noSit",
            Technique::Gvm => "GVM",
            Technique::Gs(m) => m.label(),
        }
    }

    /// The five techniques of Figure 7, in the paper's order.
    pub fn all() -> [Technique; 5] {
        [
            Technique::NoSit,
            Technique::Gvm,
            Technique::Gs(ErrorMode::NInd),
            Technique::Gs(ErrorMode::Diff),
            Technique::Gs(ErrorMode::Opt),
        ]
    }
}

/// Result of evaluating one query under one technique.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryEval {
    /// Mean absolute cardinality error over the query's sub-queries.
    pub avg_abs_error: f64,
    /// Number of sub-queries evaluated.
    pub subqueries: usize,
    /// View-matching calls issued while answering all requests.
    pub vm_calls: u64,
    /// Wall time for all estimation requests (excludes truth computation).
    pub wall: Duration,
    /// Portion of `wall` spent manipulating histograms (Figure 8's split;
    /// zero for techniques that do not expose the split).
    pub histogram_time: Duration,
}

/// Evaluates one query: estimates the cardinality of every non-empty
/// predicate subset and compares with the truth from `oracle`.
pub fn eval_query(
    db: &Database,
    oracle: &mut CardinalityOracle<'_>,
    query: &SpjQuery,
    catalog: &SitCatalog,
    technique: Technique,
) -> QueryEval {
    let ctx = QueryContext::new(db, query);
    let all = ctx.all();
    let subsets: Vec<PredSet> = all.subsets().collect();

    // Truth first (not timed — it is the metric, not the technique).
    let truths: Vec<f64> = subsets
        .iter()
        .map(|&p| {
            let tables = ctx.tables_of(p);
            let preds = ctx.predicates_of(p);
            oracle.cardinality(&tables, &preds).unwrap_or(0) as f64
        })
        .collect();

    let start = Instant::now();
    let (estimates, vm_calls, histogram_time) = match technique {
        Technique::NoSit => {
            let nosit = NoSitEstimator::from_catalog(catalog);
            let mut est = nosit.estimator(db, query);
            let cards: Vec<f64> = subsets.iter().map(|&p| est.cardinality(p)).collect();
            let stats = est.stats();
            (cards, stats.vm_calls, stats.histogram_time)
        }
        Technique::Gs(mode) => {
            let mut est = SelectivityEstimator::new(db, query, catalog, mode);
            let cards: Vec<f64> = subsets.iter().map(|&p| est.cardinality(p)).collect();
            let stats = est.stats();
            (cards, stats.vm_calls, stats.histogram_time)
        }
        Technique::Gvm => {
            let mut gvm = GreedyViewMatching::new(db, query, catalog);
            let cards: Vec<f64> = subsets.iter().map(|&p| gvm.cardinality(p)).collect();
            (cards, gvm.stats().vm_calls, Duration::ZERO)
        }
    };
    let wall = start.elapsed();

    let total_err: f64 = estimates
        .iter()
        .zip(&truths)
        .map(|(e, t)| (e - t).abs())
        .sum();
    QueryEval {
        avg_abs_error: total_err / subsets.len() as f64,
        subqueries: subsets.len(),
        vm_calls,
        wall,
        histogram_time,
    }
}

/// Convenience: mean of per-query average errors over a workload.
pub fn eval_workload(
    db: &Database,
    oracle: &mut CardinalityOracle<'_>,
    workload: &[SpjQuery],
    catalog: &SitCatalog,
    technique: Technique,
) -> (f64, Vec<QueryEval>) {
    let evals: Vec<QueryEval> = workload
        .iter()
        .map(|q| eval_query(db, oracle, q, catalog, technique))
        .collect();
    let mean = evals.iter().map(|e| e.avg_abs_error).sum::<f64>() / evals.len().max(1) as f64;
    (mean, evals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{Setup, SetupConfig};

    fn tiny_setup() -> Setup {
        Setup::new(SetupConfig {
            scale: 0.002,
            queries: 3,
            ..SetupConfig::default()
        })
    }

    #[test]
    fn all_techniques_produce_finite_errors() {
        let s = tiny_setup();
        let wl = s.workload(3);
        let pool = s.pool(&wl, 2);
        let mut oracle = CardinalityOracle::new(&s.snowflake.db);
        for technique in Technique::all() {
            let e = eval_query(&s.snowflake.db, &mut oracle, &wl[0], &pool, technique);
            assert!(e.avg_abs_error.is_finite(), "{technique:?}");
            assert_eq!(e.subqueries, (1 << wl[0].predicates.len()) - 1);
        }
    }

    #[test]
    fn gs_with_sits_beats_nosit_on_average() {
        let s = tiny_setup();
        let wl = s.workload(3);
        let pool = s.pool(&wl, 3);
        let mut oracle = CardinalityOracle::new(&s.snowflake.db);
        let (nosit, _) = eval_workload(&s.snowflake.db, &mut oracle, &wl, &pool, Technique::NoSit);
        let (gs, _) = eval_workload(
            &s.snowflake.db,
            &mut oracle,
            &wl,
            &pool,
            Technique::Gs(ErrorMode::Diff),
        );
        assert!(
            gs < nosit,
            "GS-Diff ({gs}) should beat noSit ({nosit}) with a J3 pool"
        );
    }

    #[test]
    fn opt_is_at_least_as_good_as_nind() {
        let s = tiny_setup();
        let wl = s.workload(3);
        let pool = s.pool(&wl, 2);
        let mut oracle = CardinalityOracle::new(&s.snowflake.db);
        let (nind, _) = eval_workload(
            &s.snowflake.db,
            &mut oracle,
            &wl,
            &pool,
            Technique::Gs(ErrorMode::NInd),
        );
        let (opt, _) = eval_workload(
            &s.snowflake.db,
            &mut oracle,
            &wl,
            &pool,
            Technique::Gs(ErrorMode::Opt),
        );
        // Opt optimizes per-factor truth, which strongly correlates with —
        // but does not strictly dominate — whole-query error. Allow a thin
        // margin.
        assert!(
            opt <= nind * 1.25 + 1e-6,
            "GS-Opt ({opt}) should not lose badly to GS-nInd ({nind})"
        );
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = Technique::all().iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["noSit", "GVM", "GS-nInd", "GS-Diff", "GS-Opt"]);
    }
}

//! Multidimensional-SIT extension experiment (§3.3 beyond the paper's
//! unidimensional evaluation).
//!
//! The paper's factor machinery is defined for `SIT(x, X|Q)` but its
//! experiments use unidimensional SITs only. This experiment quantifies
//! what that restriction costs on the snowflake workloads: `getSelectivity`
//! (GS-Diff) with the 1-D `J_i` pool alone versus the same pool plus a 2-D
//! grid pool (join-attribute × filter-attribute and filter × filter pairs).
//!
//! ```text
//! cargo run --release -p sqe-bench --bin multidim [-- --queries 50]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{build_pool2, ErrorMode, PredSet, QueryContext, SelectivityEstimator};
use sqe_engine::{CardinalityOracle, Predicate, SpjQuery};

#[derive(Serialize)]
struct Row {
    joins: usize,
    pool: String,
    one_d_error: f64,
    with_2d_error: f64,
    improvement: f64,
}

fn main() {
    let args = Args::parse();
    let mut config = SetupConfig::from_args(&args);
    if config.queries == SetupConfig::default().queries {
        config.queries = 50;
    }
    let setup = Setup::new(config);
    let db = &setup.snowflake.db;
    let grid: usize = args.get("grid", 32);

    // Random workloads *including* the correlated sales.discount column
    // (excluded from the default filter set precisely because 1-D SITs
    // cannot capture its intra-table correlation with sales.quantity).
    let sf = &setup.snowflake;
    let mut corr_cols = sf.filter_columns.clone();
    corr_cols.push(sf.col("sales.discount"));

    let mut rows = Vec::new();
    for joins in [5usize, 7] {
        eprintln!("=== {joins}-way joins (filters may draw sales.discount) ===");
        let workload = sqe_datagen::generate_workload(
            db,
            &sf.join_edges,
            &corr_cols,
            sqe_datagen::WorkloadConfig {
                queries: setup.config().queries,
                joins,
                filters: 3,
                target_selectivity: 0.05,
                seed: 0xD15C ^ joins as u64,
            },
        );
        let mut oracle = CardinalityOracle::new(db);
        eprintln!("building 2-D pool (grid {grid}×{grid}) ...");
        let pool2 = build_pool2(db, &workload, 1, grid).expect("2-D pool builds");
        eprintln!("2-D pool: {} grids", pool2.len());
        for pool_i in [1usize, 2] {
            let pool = setup.pool(&workload, pool_i);
            let (mut e1, mut e2) = (0.0f64, 0.0f64);
            let mut count = 0usize;
            for q in &workload {
                let ctx = QueryContext::new(db, q);
                let mut one_d = SelectivityEstimator::new(db, q, &pool, ErrorMode::Diff);
                let mut two_d = SelectivityEstimator::new(db, q, &pool, ErrorMode::Diff)
                    .with_sit2_catalog(&pool2);
                let all: Vec<PredSet> = ctx.all().subsets().collect();
                for &p in &all {
                    let truth = oracle
                        .cardinality(&ctx.tables_of(p), &ctx.predicates_of(p))
                        .unwrap_or(0) as f64;
                    e1 += (one_d.cardinality(p) - truth).abs();
                    e2 += (two_d.cardinality(p) - truth).abs();
                    count += 1;
                }
            }
            let (e1, e2) = (e1 / count as f64, e2 / count as f64);
            eprintln!("  J{pool_i}: 1-D {} vs +2-D {}", fmt_num(e1), fmt_num(e2));
            rows.push(Row {
                joins,
                pool: format!("J{pool_i}"),
                one_d_error: e1,
                with_2d_error: e2,
                improvement: if e1 > 0.0 { 1.0 - e2 / e1 } else { 0.0 },
            });
        }
    }

    println!("\nMultidimensional SITs — avg absolute error, GS-Diff\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}-way", r.joins),
                r.pool.clone(),
                fmt_num(r.one_d_error),
                fmt_num(r.with_2d_error),
                format!("{:.0}%", r.improvement * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "workload",
                "1-D pool",
                "1-D only",
                "+2-D grids",
                "reduction"
            ],
            &table
        )
    );
    // --- Targeted correlated-filter workload -----------------------------
    // The random workloads rarely place two *correlated* filters on the
    // same table; this section forces the pattern the grids exist for:
    // sales.quantity and sales.discount are generated correlated (bulk
    // discounts).
    eprintln!("correlated co-located filters ...");
    let (qty, disc) = (sf.col("sales.quantity"), sf.col("sales.discount"));
    let mut corr_queries = Vec::new();
    for k in 0..10i64 {
        let q = SpjQuery::from_predicates(vec![
            sf.join_edges[1].predicate(), // sales ⋈ product
            Predicate::range(qty, 1 + 4 * k, 5 + 4 * k),
            Predicate::range(disc, 3 * k / 5, 3 * k / 5 + 4),
        ])
        .expect("correlated query");
        corr_queries.push(q);
    }
    let pool1 = setup.pool(&corr_queries, 1);
    let pool2c = build_pool2(db, &corr_queries, 1, grid).expect("2-D pool");
    let mut oracle = CardinalityOracle::new(db);
    let (mut e1, mut e2, mut n) = (0.0f64, 0.0f64, 0usize);
    for q in &corr_queries {
        let ctx = QueryContext::new(db, q);
        let mut one_d = SelectivityEstimator::new(db, q, &pool1, ErrorMode::Diff);
        let mut two_d =
            SelectivityEstimator::new(db, q, &pool1, ErrorMode::Diff).with_sit2_catalog(&pool2c);
        for p in ctx.all().subsets() {
            let truth = oracle
                .cardinality(&ctx.tables_of(p), &ctx.predicates_of(p))
                .unwrap_or(0) as f64;
            e1 += (one_d.cardinality(p) - truth).abs();
            e2 += (two_d.cardinality(p) - truth).abs();
            n += 1;
        }
    }
    let (e1, e2) = (e1 / n as f64, e2 / n as f64);
    println!("\ncorrelated filters (sales.quantity × sales.discount):");
    println!(
        "  1-D only {}  →  +2-D grids {}  ({:.0}% error reduction)",
        fmt_num(e1),
        fmt_num(e2),
        100.0 * (1.0 - e2 / e1.max(1e-12))
    );
    rows.push(Row {
        joins: 1,
        pool: "corr".into(),
        one_d_error: e1,
        with_2d_error: e2,
        improvement: 1.0 - e2 / e1.max(1e-12),
    });

    println!("\nwith the significance gate, grids act only where real co-located");
    println!("correlation exists; on the random §5 workloads their net effect is small,");
    println!("which empirically supports the paper's unidimensional-SIT restriction");

    match write_json("multidim", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

//! Single-query `getSelectivity` latency by predicate count — the perf
//! trajectory of the estimator's hot path.
//!
//! For each `n` in `--ns` the bench generates a workload whose queries have
//! exactly `n` predicates (`min(n/2, 7)` joins, the rest filters, over the
//! standard snowflake schema), builds one `J_i` SIT pool, and then times
//! **cold single-query estimation**: once on the serial dense fill, and once
//! per entry of the `--threads` sweep on the parallel fill. Every sample
//! constructs fresh [`SelectivityEstimator`]s (no cross-query cache, nothing
//! memoized) and runs `selectivity()` to completion; every threaded sample is
//! asserted **bit-identical** to the serial run, with equal
//! memo/peel/view-matching counts. The reported latency is the median over
//! `queries × reps` samples; memo/peel entry counts come from the final
//! sample and describe the size of the subset-lattice walk.
//!
//! Each `(n, threads)` pair becomes one output row and carries the
//! work-stealing scheduler counters of its final sample
//! ([`sqe_core::FillStats`]): fills that actually went parallel, scheduler
//! tasks, solved masks, steal count, idle spins, the deepest queue observed,
//! and per-rank solved-mask occupancy. Rows whose fills stayed serial
//! (threads = 1, or lattices below the `FillSchedule::Auto` threshold)
//! report zeros — that the counters are zero is itself the documented
//! behaviour of the auto heuristic.
//!
//! `--gate-speedup` turns the bench into a CI gate: on a multi-core host
//! (`available_parallelism() >= 2`) it exits non-zero if the largest
//! swept `n` shows a 2-thread speedup below 1.0×. On a single-core host the
//! gate is skipped (parallelism cannot pay without a second core) and a
//! notice is printed instead. The gate reads only the exact-engine rows;
//! the beam section below never participates.
//!
//! A second sweep covers the widths the exact engines cannot reach: for
//! each `n` in `--beam-ns` (default 20, 24, 28, 32 — past the dense
//! ceiling, where `Auto` routes to the beam) the bench times the
//! **beam-search approximate engine** cold and serial at every width in
//! `--beam-widths` (default 1, 2, 4, 8) under the default expansions cap.
//! Each `(n, width)` row records the median latency plus the final
//! sample's [`sqe_core::BeamStats`] — expansions, candidates generated /
//! scored / pruned, cap fallbacks, frontier peak, and the mean
//! admissible-bound tightness — so the committed file shows both how the
//! walk scales with `n` and what width actually buys. Every beam sample
//! is asserted deterministic (bit-identical across reps) and in `[0, 1]`.
//!
//! Results are printed as tables and written to **`BENCH_estimator.json`
//! at the repo root** (committed, so the perf trajectory across PRs is
//! diffable) as `{ "rows": [...], "beam": [...] }`; microsecond fields
//! are rounded to nanosecond precision.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin estimator_bench \
//!     [-- --ns 4,8,12,16 --queries 3 --reps 3 --pool 2 --threads 1,2,4 \
//!         --beam-ns 20,24,28,32 --beam-widths 1,2,4,8 --gate-speedup]
//! ```

use std::time::Instant;

use serde::Serialize;
use sqe_bench::report::{render_table, round_us, write_json_root};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{BeamConfig, BeamStats, DpStrategy, ErrorMode, FillStats, SelectivityEstimator};
use sqe_datagen::{generate_workload, WorkloadConfig};

#[derive(Serialize)]
struct Row {
    n: usize,
    joins: usize,
    filters: usize,
    queries: usize,
    reps: usize,
    /// DP worker threads of the threaded column (the serial column is
    /// always 1).
    threads: usize,
    serial_median_us: f64,
    serial_min_us: f64,
    serial_max_us: f64,
    threaded_median_us: f64,
    threaded_min_us: f64,
    threaded_max_us: f64,
    /// `serial_median_us / threaded_median_us` (≈1 on a single-core host).
    speedup: f64,
    memo_entries: usize,
    peel_entries: usize,
    vm_calls: u64,
    /// Work-stealing scheduler counters from the final sample of this
    /// `(n, threads)` cell. All-zero when every fill stayed serial (the
    /// `FillSchedule::Auto` heuristic, or `threads == 1`).
    parallel_fills: u64,
    ws_tasks: u64,
    ws_solved: u64,
    ws_steals: u64,
    ws_idle_spins: u64,
    ws_max_queue_depth: u64,
    /// Solved masks per popcount rank (trailing zero ranks trimmed).
    ws_rank_tasks: Vec<u64>,
}

/// One `(n, width)` cell of the beam sweep: cold serial latency of the
/// approximate engine past the exact ceiling, plus the beam's own
/// observability counters from the final sample.
#[derive(Serialize)]
struct BeamRow {
    n: usize,
    joins: usize,
    filters: usize,
    queries: usize,
    reps: usize,
    width: usize,
    expansions_cap: u64,
    median_us: f64,
    min_us: f64,
    max_us: f64,
    memo_entries: usize,
    /// [`BeamStats`] of the final sample.
    expansions: u64,
    generated: u64,
    scored: u64,
    beam_pruned: u64,
    cap_fallbacks: u64,
    frontier_peak: usize,
    /// Mean admissible-bound tightness (0 when the beam never expanded).
    bound_tightness: f64,
}

/// The committed `BENCH_estimator.json` document: exact-engine thread
/// sweep plus the wide-`n` beam sweep.
#[derive(Serialize)]
struct Report {
    rows: Vec<Row>,
    beam: Vec<BeamRow>,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measure `queries × reps` cold serial estimations, asserting nothing
/// (the serial run *is* the reference). Returns samples in µs plus the
/// final sample's estimator for stats extraction.
struct SerialBaseline {
    samples: Vec<f64>,
    /// Per-query reference bits + lattice footprint, checked against every
    /// threaded sample.
    refs: Vec<(u64, usize, usize, u64)>,
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let pool_i: usize = args.get("pool", 2);
    let queries: usize = args.get("queries", 3);
    let reps: usize = args.get("reps", 3);
    let gate_speedup = args.flag("gate-speedup");
    let threads_sweep: Vec<usize> = args
        .get_str("threads", "1,2,4")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    let ns: Vec<usize> = args
        .get_str("ns", "4,8,12,16")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let beam_ns: Vec<usize> = args
        .get_str("beam-ns", "20,24,28,32")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let beam_widths: Vec<usize> = args
        .get_str("beam-widths", "1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&w| w >= 1)
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for &n in &ns {
        let joins = (n / 2).min(setup.snowflake.join_edges.len());
        let filters = n - joins;
        eprintln!("n={n}: generating {queries} queries ({joins} joins + {filters} filters) ...");
        let workload = generate_workload(
            &setup.snowflake.db,
            &setup.snowflake.join_edges,
            &setup.snowflake.filter_columns,
            WorkloadConfig {
                queries,
                joins,
                filters,
                target_selectivity: setup.config().target_selectivity,
                seed: setup.config().seed ^ (n as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            },
        );
        eprintln!("n={n}: building J{pool_i} pool ...");
        let pool = setup.pool(&workload, pool_i);

        // Serial baseline: timed once per n, reused as the reference for
        // every threads entry in the sweep.
        let mut baseline = SerialBaseline {
            samples: Vec::with_capacity(queries * reps),
            refs: Vec::with_capacity(queries),
        };
        let mut memo_entries = 0;
        let mut peel_entries = 0;
        let mut vm_calls = 0;
        for query in &workload {
            let mut last = None;
            for _ in 0..reps {
                let start = Instant::now();
                let mut serial =
                    SelectivityEstimator::new(&setup.snowflake.db, query, &pool, ErrorMode::Diff);
                let sel = std::hint::black_box(serial.selectivity());
                baseline.samples.push(start.elapsed().as_secs_f64() * 1e6);
                let ss = serial.stats();
                last = Some((sel.to_bits(), ss.memo_entries, ss.peel_entries, ss.vm_calls));
                memo_entries = ss.memo_entries;
                peel_entries = ss.peel_entries;
                vm_calls = ss.vm_calls;
            }
            baseline.refs.push(last.unwrap());
        }
        let serial_median = median(&mut baseline.samples);
        eprintln!(
            "n={n}: serial median {serial_median:.1} µs over {} samples",
            baseline.samples.len()
        );

        for &threads in &threads_sweep {
            let mut threaded_samples: Vec<f64> = Vec::with_capacity(queries * reps);
            let mut fill = FillStats::default();
            for (query, reference) in workload.iter().zip(&baseline.refs) {
                for _ in 0..reps {
                    let start = Instant::now();
                    let mut par = SelectivityEstimator::new(
                        &setup.snowflake.db,
                        query,
                        &pool,
                        ErrorMode::Diff,
                    )
                    .with_dp_threads(threads);
                    let par_sel = std::hint::black_box(par.selectivity());
                    threaded_samples.push(start.elapsed().as_secs_f64() * 1e6);

                    // The parallel fill must reproduce the serial result bit
                    // for bit, and the same lattice/link/view-matching
                    // footprint, on every sample of the sweep.
                    let ps = par.stats();
                    assert_eq!(
                        reference.0,
                        par_sel.to_bits(),
                        "n={n} threads={threads}: threaded selectivity diverged from serial"
                    );
                    assert_eq!(
                        reference.1, ps.memo_entries,
                        "n={n} t={threads}: memo entries"
                    );
                    assert_eq!(
                        reference.2, ps.peel_entries,
                        "n={n} t={threads}: peel entries"
                    );
                    assert_eq!(
                        reference.3, ps.vm_calls,
                        "n={n} t={threads}: view-matching calls"
                    );
                    fill = par.fill_stats().clone();
                }
            }
            let threaded_median = median(&mut threaded_samples);
            let mut rank_tasks = fill.rank_tasks.clone();
            while rank_tasks.last() == Some(&0) {
                rank_tasks.pop();
            }
            eprintln!(
                "n={n} threads={threads}: median {threaded_median:.1} µs \
                 ({:.2}x, bit-identical); last sample: {} parallel fill(s), \
                 {} tasks, {} steals, max queue depth {}",
                serial_median / threaded_median,
                fill.parallel_fills,
                fill.tasks,
                fill.steals,
                fill.max_queue_depth,
            );
            rows.push(Row {
                n,
                joins,
                filters,
                queries,
                reps,
                threads,
                serial_median_us: round_us(serial_median),
                serial_min_us: round_us(baseline.samples[0]),
                serial_max_us: round_us(baseline.samples[baseline.samples.len() - 1]),
                threaded_median_us: round_us(threaded_median),
                threaded_min_us: round_us(threaded_samples[0]),
                threaded_max_us: round_us(threaded_samples[threaded_samples.len() - 1]),
                speedup: round_us(serial_median / threaded_median),
                memo_entries,
                peel_entries,
                vm_calls,
                parallel_fills: fill.parallel_fills,
                ws_tasks: fill.tasks,
                ws_solved: fill.solved,
                ws_steals: fill.steals,
                ws_idle_spins: fill.idle_spins,
                ws_max_queue_depth: fill.max_queue_depth,
                ws_rank_tasks: rank_tasks,
            });
        }
    }

    // Beam sweep: the widths where the exact engines are off the table.
    // Cold, serial, one row per (n, width) at the default expansions cap.
    let mut beam_rows: Vec<BeamRow> = Vec::new();
    for &n in &beam_ns {
        let joins = (n / 2).min(setup.snowflake.join_edges.len());
        let filters = n - joins;
        eprintln!(
            "beam n={n}: generating {queries} queries ({joins} joins + {filters} filters) ..."
        );
        let workload = generate_workload(
            &setup.snowflake.db,
            &setup.snowflake.join_edges,
            &setup.snowflake.filter_columns,
            WorkloadConfig {
                queries,
                joins,
                filters,
                target_selectivity: setup.config().target_selectivity,
                seed: setup.config().seed ^ (n as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            },
        );
        eprintln!("beam n={n}: building J{pool_i} pool ...");
        let pool = setup.pool(&workload, pool_i);

        for &width in &beam_widths {
            let cfg = BeamConfig {
                width,
                ..BeamConfig::default()
            };
            let mut samples: Vec<f64> = Vec::with_capacity(queries * reps);
            let mut stats = BeamStats::default();
            let mut memo_entries = 0;
            for query in &workload {
                let mut reference: Option<u64> = None;
                for _ in 0..reps {
                    let start = Instant::now();
                    let mut est = SelectivityEstimator::new(
                        &setup.snowflake.db,
                        query,
                        &pool,
                        ErrorMode::Diff,
                    )
                    .with_strategy(DpStrategy::Beam)
                    .with_beam_config(cfg);
                    let sel = std::hint::black_box(est.selectivity());
                    samples.push(start.elapsed().as_secs_f64() * 1e6);

                    assert!(
                        (0.0..=1.0).contains(&sel),
                        "n={n} width={width}: beam selectivity {sel} out of range"
                    );
                    // The beam is approximate but deterministic: every rep
                    // of the same (query, width) must answer bit-identically.
                    match reference {
                        None => reference = Some(sel.to_bits()),
                        Some(bits) => assert_eq!(
                            bits,
                            sel.to_bits(),
                            "n={n} width={width}: beam answer not deterministic across reps"
                        ),
                    }
                    stats = est.beam_stats().clone();
                    memo_entries = est.stats().memo_entries;
                }
            }
            let median_us = median(&mut samples);
            eprintln!(
                "beam n={n} width={width}: median {median_us:.1} µs; last sample: \
                 {} expansions, {} scored, {} pruned, {} cap fallback(s), \
                 tightness {:.3}",
                stats.expansions,
                stats.scored,
                stats.pruned,
                stats.cap_fallbacks,
                stats.bound_tightness().unwrap_or(0.0),
            );
            beam_rows.push(BeamRow {
                n,
                joins,
                filters,
                queries,
                reps,
                width,
                expansions_cap: cfg.expansions_cap,
                median_us: round_us(median_us),
                min_us: round_us(samples[0]),
                max_us: round_us(samples[samples.len() - 1]),
                memo_entries,
                expansions: stats.expansions,
                generated: stats.generated,
                scored: stats.scored,
                beam_pruned: stats.pruned,
                cap_fallbacks: stats.cap_fallbacks,
                frontier_peak: stats.frontier_peak,
                bound_tightness: stats.bound_tightness().unwrap_or(0.0),
            });
        }
    }

    println!("estimator_bench — cold single-query getSelectivity latency\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.threads.to_string(),
                format!("{:.1}", r.serial_median_us),
                format!("{:.1}", r.threaded_median_us),
                format!("{:.2}x", r.speedup),
                r.parallel_fills.to_string(),
                r.ws_steals.to_string(),
                r.ws_max_queue_depth.to_string(),
                r.memo_entries.to_string(),
                r.peel_entries.to_string(),
                r.vm_calls.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "n",
                "thr",
                "serial µs",
                "threaded µs",
                "speedup",
                "par fills",
                "steals",
                "max q",
                "memo",
                "peel",
                "vm calls"
            ],
            &table
        )
    );
    if !beam_rows.is_empty() {
        println!("\nbeam engine — cold serial latency past the exact ceiling\n");
        let table: Vec<Vec<String>> = beam_rows
            .iter()
            .map(|r| {
                vec![
                    r.n.to_string(),
                    r.width.to_string(),
                    format!("{:.1}", r.median_us),
                    r.expansions.to_string(),
                    r.scored.to_string(),
                    r.beam_pruned.to_string(),
                    r.cap_fallbacks.to_string(),
                    r.frontier_peak.to_string(),
                    format!("{:.3}", r.bound_tightness),
                    r.memo_entries.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "n",
                    "width",
                    "median µs",
                    "expand",
                    "scored",
                    "pruned",
                    "cap fb",
                    "peak",
                    "tight",
                    "memo"
                ],
                &table
            )
        );
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores} core(s) available to this process\n");

    let report = Report {
        rows,
        beam: beam_rows,
    };
    match write_json_root("BENCH_estimator", &report) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    let rows = report.rows;

    if gate_speedup {
        if cores < 2 {
            println!(
                "speedup gate: SKIPPED — single-core host, parallel fill \
                 cannot beat serial without a second core"
            );
            return;
        }
        // Gate on the largest swept n at 2 threads: the lattice there is
        // big enough that the scheduler must pay for itself.
        let gate_n = ns.iter().copied().max().unwrap_or(0);
        let Some(row) = rows.iter().find(|r| r.n == gate_n && r.threads == 2) else {
            eprintln!("speedup gate: FAILED — no (n={gate_n}, threads=2) row in the sweep");
            std::process::exit(1);
        };
        if row.speedup < 1.0 {
            eprintln!(
                "speedup gate: FAILED — n={gate_n} 2-thread speedup {:.2}x < 1.0x",
                row.speedup
            );
            std::process::exit(1);
        }
        println!(
            "speedup gate: PASS — n={gate_n} 2-thread speedup {:.2}x >= 1.0x",
            row.speedup
        );
    }
}

//! Single-query `getSelectivity` latency by predicate count — the perf
//! trajectory of the estimator's hot path.
//!
//! For each `n` in `--ns` the bench generates a workload whose queries have
//! exactly `n` predicates (`min(n/2, 7)` joins, the rest filters, over the
//! standard snowflake schema), builds one `J_i` SIT pool, and then times
//! **cold single-query estimation** twice per sample: once on the serial
//! dense fill and once on the rank-parallel fill with `--threads` workers.
//! Every sample constructs fresh [`SelectivityEstimator`]s (no cross-query
//! cache, nothing memoized) and runs `selectivity()` to completion; the
//! threaded run is asserted **bit-identical** to the serial run, with equal
//! memo/peel/view-matching counts, on every sample. The reported latency is
//! the median over `queries × reps` samples; memo/peel entry counts come
//! from the final sample and describe the size of the subset-lattice walk.
//!
//! Results are printed as a table and written to **`BENCH_estimator.json`
//! at the repo root** (committed, so the perf trajectory across PRs is
//! diffable); microsecond fields are rounded to nanosecond precision.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin estimator_bench \
//!     [-- --ns 4,8,12,16 --queries 3 --reps 3 --pool 2 --threads 2]
//! ```

use std::time::Instant;

use serde::Serialize;
use sqe_bench::report::{render_table, round_us, write_json_root};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{ErrorMode, SelectivityEstimator};
use sqe_datagen::{generate_workload, WorkloadConfig};

#[derive(Serialize)]
struct Row {
    n: usize,
    joins: usize,
    filters: usize,
    queries: usize,
    reps: usize,
    /// DP worker threads of the threaded column (the serial column is
    /// always 1).
    threads: usize,
    serial_median_us: f64,
    serial_min_us: f64,
    serial_max_us: f64,
    threaded_median_us: f64,
    threaded_min_us: f64,
    threaded_max_us: f64,
    /// `serial_median_us / threaded_median_us` (≈1 on a single-core host).
    speedup: f64,
    memo_entries: usize,
    peel_entries: usize,
    vm_calls: u64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let pool_i: usize = args.get("pool", 2);
    let queries: usize = args.get("queries", 3);
    let reps: usize = args.get("reps", 3);
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism().map_or(2, |n| n.get()),
    );
    let ns: Vec<usize> = args
        .get_str("ns", "4,8,12,16")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for &n in &ns {
        let joins = (n / 2).min(setup.snowflake.join_edges.len());
        let filters = n - joins;
        eprintln!("n={n}: generating {queries} queries ({joins} joins + {filters} filters) ...");
        let workload = generate_workload(
            &setup.snowflake.db,
            &setup.snowflake.join_edges,
            &setup.snowflake.filter_columns,
            WorkloadConfig {
                queries,
                joins,
                filters,
                target_selectivity: setup.config().target_selectivity,
                seed: setup.config().seed ^ (n as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            },
        );
        eprintln!("n={n}: building J{pool_i} pool ...");
        let pool = setup.pool(&workload, pool_i);

        let mut serial_samples: Vec<f64> = Vec::with_capacity(queries * reps);
        let mut threaded_samples: Vec<f64> = Vec::with_capacity(queries * reps);
        let mut memo_entries = 0;
        let mut peel_entries = 0;
        let mut vm_calls = 0;
        let mut last_serial_hist_us = 0.0;
        let mut last_threaded_hist_us = 0.0;
        for query in &workload {
            for _ in 0..reps {
                let start = Instant::now();
                let mut serial =
                    SelectivityEstimator::new(&setup.snowflake.db, query, &pool, ErrorMode::Diff);
                let serial_sel = std::hint::black_box(serial.selectivity());
                serial_samples.push(start.elapsed().as_secs_f64() * 1e6);

                let start = Instant::now();
                let mut par =
                    SelectivityEstimator::new(&setup.snowflake.db, query, &pool, ErrorMode::Diff)
                        .with_dp_threads(threads);
                let par_sel = std::hint::black_box(par.selectivity());
                threaded_samples.push(start.elapsed().as_secs_f64() * 1e6);

                // The parallel fill must reproduce the serial result bit for
                // bit, and the same lattice/link/view-matching footprint.
                let (ss, ps) = (serial.stats(), par.stats());
                assert_eq!(
                    serial_sel.to_bits(),
                    par_sel.to_bits(),
                    "n={n}: threaded selectivity diverged from serial"
                );
                assert_eq!(ss.memo_entries, ps.memo_entries, "n={n}: memo entries");
                assert_eq!(ss.peel_entries, ps.peel_entries, "n={n}: peel entries");
                assert_eq!(ss.vm_calls, ps.vm_calls, "n={n}: view-matching calls");
                memo_entries = ss.memo_entries;
                peel_entries = ss.peel_entries;
                vm_calls = ss.vm_calls;
                last_serial_hist_us = ss.histogram_time.as_secs_f64() * 1e6;
                last_threaded_hist_us = ps.histogram_time.as_secs_f64() * 1e6;
            }
        }
        let serial_median = median(&mut serial_samples);
        let threaded_median = median(&mut threaded_samples);
        rows.push(Row {
            n,
            joins,
            filters,
            queries,
            reps,
            threads,
            serial_median_us: round_us(serial_median),
            serial_min_us: round_us(serial_samples[0]),
            serial_max_us: round_us(serial_samples[serial_samples.len() - 1]),
            threaded_median_us: round_us(threaded_median),
            threaded_min_us: round_us(threaded_samples[0]),
            threaded_max_us: round_us(threaded_samples[threaded_samples.len() - 1]),
            speedup: round_us(serial_median / threaded_median),
            memo_entries,
            peel_entries,
            vm_calls,
        });
        eprintln!(
            "n={n}: serial median {serial_median:.1} µs, {threads}-thread median \
             {threaded_median:.1} µs over {} samples each (bit-identical); \
             last-sample histogram time {:.1} µs serial / {:.1} µs threaded (summed over workers)",
            serial_samples.len(),
            last_serial_hist_us,
            last_threaded_hist_us,
        );
    }

    println!("estimator_bench — cold single-query getSelectivity latency\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", r.serial_median_us),
                format!("{:.1}", r.threaded_median_us),
                format!("{:.2}x", r.speedup),
                r.memo_entries.to_string(),
                r.peel_entries.to_string(),
                r.vm_calls.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "n",
                "serial µs",
                &format!("{threads}-thread µs"),
                "speedup",
                "memo",
                "peel",
                "vm calls"
            ],
            &table
        )
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host parallelism: {cores} core(s) available to this process\n");

    match write_json_root("BENCH_estimator", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

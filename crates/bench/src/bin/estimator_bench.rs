//! Single-query `getSelectivity` latency by predicate count — the perf
//! trajectory of the estimator's hot path.
//!
//! For each `n` in `--ns` the bench generates a workload whose queries have
//! exactly `n` predicates (`min(n/2, 7)` joins, the rest filters, over the
//! standard snowflake schema), builds one `J_i` SIT pool, and then times
//! **cold single-query estimation**: every sample constructs a fresh
//! [`SelectivityEstimator`] (no cross-query cache, nothing memoized) and
//! runs `selectivity()` to completion. The reported latency is the median
//! over `queries × reps` samples; memo/peel entry counts come from the
//! final sample and describe the size of the subset-lattice walk.
//!
//! Results are printed as a table and written to **`BENCH_estimator.json`
//! at the repo root** (committed, so the perf trajectory across PRs is
//! diffable).
//!
//! ```text
//! cargo run --release -p sqe-bench --bin estimator_bench \
//!     [-- --ns 4,8,12,16 --queries 3 --reps 3 --pool 2]
//! ```

use std::time::Instant;

use serde::Serialize;
use sqe_bench::report::{render_table, write_json_root};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{ErrorMode, SelectivityEstimator};
use sqe_datagen::{generate_workload, WorkloadConfig};

#[derive(Serialize)]
struct Row {
    n: usize,
    joins: usize,
    filters: usize,
    queries: usize,
    reps: usize,
    median_us: f64,
    min_us: f64,
    max_us: f64,
    memo_entries: usize,
    peel_entries: usize,
    vm_calls: u64,
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let pool_i: usize = args.get("pool", 2);
    let queries: usize = args.get("queries", 3);
    let reps: usize = args.get("reps", 3);
    let ns: Vec<usize> = args
        .get_str("ns", "4,8,12,16")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for &n in &ns {
        let joins = (n / 2).min(setup.snowflake.join_edges.len());
        let filters = n - joins;
        eprintln!("n={n}: generating {queries} queries ({joins} joins + {filters} filters) ...");
        let workload = generate_workload(
            &setup.snowflake.db,
            &setup.snowflake.join_edges,
            &setup.snowflake.filter_columns,
            WorkloadConfig {
                queries,
                joins,
                filters,
                target_selectivity: setup.config().target_selectivity,
                seed: setup.config().seed ^ (n as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            },
        );
        eprintln!("n={n}: building J{pool_i} pool ...");
        let pool = setup.pool(&workload, pool_i);

        let mut samples: Vec<f64> = Vec::with_capacity(queries * reps);
        let mut memo_entries = 0;
        let mut peel_entries = 0;
        let mut vm_calls = 0;
        for query in &workload {
            for _ in 0..reps {
                let start = Instant::now();
                let mut est =
                    SelectivityEstimator::new(&setup.snowflake.db, query, &pool, ErrorMode::Diff);
                std::hint::black_box(est.selectivity());
                samples.push(start.elapsed().as_secs_f64() * 1e6);
                let stats = est.stats();
                memo_entries = stats.memo_entries;
                peel_entries = stats.peel_entries;
                vm_calls = stats.vm_calls;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        rows.push(Row {
            n,
            joins,
            filters,
            queries,
            reps,
            median_us: median,
            min_us: samples[0],
            max_us: samples[samples.len() - 1],
            memo_entries,
            peel_entries,
            vm_calls,
        });
        eprintln!(
            "n={n}: median {median:.1} µs over {} samples",
            samples.len()
        );
    }

    println!("estimator_bench — cold single-query getSelectivity latency\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                format!("{:.1}", r.median_us),
                format!("{:.1}", r.min_us),
                format!("{:.1}", r.max_us),
                r.memo_entries.to_string(),
                r.peel_entries.to_string(),
                r.vm_calls.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "n",
                "median µs",
                "min µs",
                "max µs",
                "memo",
                "peel",
                "vm calls"
            ],
            &table
        )
    );

    match write_json_root("BENCH_estimator", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

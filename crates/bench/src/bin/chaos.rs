//! Chaos driver: a timed, randomized fault-injection run against the
//! estimation service, built for the CI `chaos-smoke` job.
//!
//! Arms every workspace failpoint at deterministic rates, then hammers the
//! service from 8 worker threads with randomized budgets (unlimited, tight
//! deadlines, tiny quotas, cancellations) for `--seconds`. A heartbeat
//! watchdog aborts the process if the workers stop making progress — a
//! hang is exactly the failure class this driver exists to catch. The run
//! log goes to stderr and a JSON summary to `results/chaos.json` (the CI
//! artifact).
//!
//! Invariants checked continuously:
//! * every request returns an answer or a clean `Overloaded` shed;
//! * `full`-quality answers are bit-identical to a fault-free reference;
//! * degraded answers always carry a reason;
//!
//! and at the end: with faults disarmed, the service returns to
//! full-quality reference-identical answers.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin chaos [-- --seconds 30]
//! ```

use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sqe_bench::report::write_json;
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::failpoint::{self, Action};
use sqe_core::{CancelToken, Quality};
use sqe_service::{Budget, DpThreadsMode, EstimationService, ServiceConfig, ServiceError};

/// Deterministic xorshift64* stream per worker.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[derive(Serialize)]
struct ChaosReport {
    seconds: u64,
    workers: usize,
    requests: u64,
    full: u64,
    degraded: u64,
    sheds: u64,
    quarantines: u64,
    installs: u64,
    /// Full-answer divergences plus label violations observed mid-run.
    violations: u64,
    degrade_reasons: Vec<u64>,
    recovered_full_quality: bool,
}

fn random_budget(rng: &mut Rng) -> Budget {
    match rng.next() % 4 {
        0 => Budget::unlimited(),
        1 => Budget::unlimited().with_deadline(Duration::from_micros(50 + rng.next() % 5000)),
        2 => Budget::unlimited().with_quota(rng.next() % 500),
        _ => {
            let c = CancelToken::new();
            if rng.next().is_multiple_of(2) {
                c.cancel();
            }
            Budget::unlimited().with_cancel(c)
        }
    }
}

fn main() {
    let args = Args::parse();
    let seconds: u64 = args.get("seconds", 30);
    let setup = Setup::new(SetupConfig::from_args(&args));
    let joins: usize = args.get("joins", 3);
    let pool_i: usize = args.get("pool", 1);

    eprintln!("chaos: generating workload and J{pool_i} pool ...");
    let workload = setup.workload(joins);
    let pool = setup.pool(&workload, pool_i);
    let db = Arc::new(setup.snowflake.db);
    let svc = Arc::new(EstimationService::new(
        Arc::clone(&db),
        pool.clone(),
        ServiceConfig {
            dp_threads: DpThreadsMode::Fixed(std::num::NonZeroUsize::new(2).unwrap()),
            max_in_flight: 32,
            ..ServiceConfig::default()
        },
    ));

    // Fault-free reference answers, computed before any failpoint arms.
    let reference: Vec<f64> = workload
        .iter()
        .map(|q| svc.estimate(q).selectivity)
        .collect();
    // The reference pass warmed the snapshot cache; start chaos cold.
    svc.install(pool.clone(), None);

    // Silence the panic reports injected faults produce on purpose, but
    // let genuine failures through.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // An injected panic, or its propagation out of a poisoned
        // rank-parallel peel slot, is expected noise; anything else is a
        // genuine failure and gets the normal report.
        let expected = |s: &str| {
            s.contains("failpoint")
                || s.contains("sibling worker")
                || s.contains("scoped thread panicked")
        };
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| expected(s))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| expected(s));
        if !injected {
            prev_hook(info);
        }
    }));

    failpoint::arm_with("dp::solve_mask", Action::Panic, 20_000, None, 11);
    failpoint::arm_with("par::publish", Action::Panic, 2_000, None, 22);
    failpoint::arm_with("service::cache_insert", Action::Sleep(1), 256, None, 33);
    failpoint::arm_with("service::install", Action::Sleep(2), 4, None, 44);
    // The bound sketch runs on every budgeted answer (panic-isolated), so
    // its failpoint exercises the backend-panic floor under load too.
    failpoint::arm_with("pessimistic::bound", Action::Panic, 10_000, None, 55);
    eprintln!("chaos: armed {:?}", failpoint::armed_sites());

    let heartbeat = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let full = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let workers = 8usize;

    // Watchdog: if no worker completes a request for 30 s, the run is
    // hung — print a diagnosis and abort with a nonzero exit code.
    let watchdog = {
        let heartbeat = Arc::clone(&heartbeat);
        std::thread::spawn(move || {
            let mut last = 0u64;
            loop {
                std::thread::sleep(Duration::from_secs(5));
                let now = heartbeat.load(Ordering::Relaxed);
                if now == u64::MAX {
                    return; // run finished
                }
                if now == last {
                    let mut strikes = 1;
                    while strikes < 6 {
                        std::thread::sleep(Duration::from_secs(5));
                        let again = heartbeat.load(Ordering::Relaxed);
                        if again == u64::MAX {
                            return;
                        }
                        if again != now {
                            break;
                        }
                        strikes += 1;
                    }
                    if strikes >= 6 {
                        eprintln!("chaos: WATCHDOG FIRED — no progress for 30 s, aborting");
                        exit(2);
                    }
                }
                last = heartbeat.load(Ordering::Relaxed);
            }
        })
    };

    std::thread::scope(|s| {
        for worker in 0..workers as u64 {
            let (svc, workload, reference, pool) = (&svc, &workload, &reference, &pool);
            let (heartbeat, violations, full, degraded, sheds, stop) =
                (&heartbeat, &violations, &full, &degraded, &sheds, &stop);
            s.spawn(move || {
                let mut rng = Rng(0xD1B54A32D192ED03 ^ (worker + 1));
                let mut round = 0u64;
                while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                    round += 1;
                    if worker == 0 && round.is_multiple_of(64) {
                        // Concurrent snapshot swaps keep caches cold and
                        // race installs against in-flight estimates.
                        svc.install(pool.clone(), None);
                    }
                    let idx = (rng.next() as usize) % workload.len();
                    let outcome =
                        svc.estimate_with_budget(&workload[idx], &random_budget(&mut rng));
                    match outcome {
                        Ok(e) => {
                            if e.quality == Quality::Full {
                                full.fetch_add(1, Ordering::Relaxed);
                                if e.selectivity.to_bits() != reference[idx].to_bits() {
                                    eprintln!(
                                        "chaos: VIOLATION — full answer for query {idx} \
                                         diverged from reference"
                                    );
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                degraded.fetch_add(1, Ordering::Relaxed);
                                if e.degraded_reason.is_none() {
                                    eprintln!(
                                        "chaos: VIOLATION — degraded answer without a reason"
                                    );
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(ServiceError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    heartbeat.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Progress log every ~2 s while the workers run.
        while Instant::now() < deadline {
            std::thread::sleep(
                Duration::from_secs(2).min(deadline.saturating_duration_since(Instant::now())),
            );
            eprintln!(
                "chaos: t={:>4.1}s requests={} full={} degraded={} sheds={}",
                seconds as f64
                    - deadline
                        .saturating_duration_since(Instant::now())
                        .as_secs_f64(),
                heartbeat.load(Ordering::Relaxed),
                full.load(Ordering::Relaxed),
                degraded.load(Ordering::Relaxed),
                sheds.load(Ordering::Relaxed),
            );
        }
    });
    heartbeat.store(u64::MAX, Ordering::Relaxed);
    let _ = watchdog.join();

    failpoint::disarm_all();
    let _ = std::panic::take_hook(); // drop the filter hook

    // Recovery: faults off, no budget — every answer must be Full and
    // bit-identical to the fault-free reference.
    let mut recovered = true;
    for (i, (q, want)) in workload.iter().zip(&reference).enumerate() {
        match svc.estimate_with_budget(q, &Budget::unlimited()) {
            Ok(e) if e.quality == Quality::Full && e.selectivity.to_bits() == want.to_bits() => {}
            Ok(e) => {
                eprintln!(
                    "chaos: VIOLATION — post-chaos query {i} came back {:?} instead of a \
                     reference-identical full answer",
                    e.quality
                );
                recovered = false;
            }
            Err(e) => {
                eprintln!("chaos: VIOLATION — post-chaos query {i} shed: {e}");
                recovered = false;
            }
        }
    }

    let stats = svc.stats();
    let report = ChaosReport {
        seconds,
        workers,
        requests: full.load(Ordering::Relaxed)
            + degraded.load(Ordering::Relaxed)
            + sheds.load(Ordering::Relaxed),
        full: full.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        quarantines: stats.quarantines,
        installs: stats.installs,
        violations: violations.load(Ordering::Relaxed),
        degrade_reasons: stats.degrade_reasons.to_vec(),
        recovered_full_quality: recovered,
    };
    println!(
        "chaos: done — {} requests ({} full / {} degraded / {} sheds), \
         {} quarantines, {} installs",
        report.requests,
        report.full,
        report.degraded,
        report.sheds,
        report.quarantines,
        report.installs
    );
    match write_json("chaos", &report) {
        Ok(p) => println!("chaos: report written to {}", p.display()),
        Err(e) => eprintln!("chaos: could not write report: {e}"),
    }

    if report.violations > 0 || !recovered || report.full == 0 {
        eprintln!("chaos: FAILED");
        exit(1);
    }
    println!("chaos: PASS — no hangs, no mislabels, clean recovery");
}

//! Chaos driver: a timed, randomized fault-injection run against the
//! estimation service, built for the CI `chaos-smoke` job.
//!
//! Arms every workspace failpoint at deterministic rates, then hammers the
//! service from 8 worker threads with randomized budgets (unlimited, tight
//! deadlines, tiny quotas, cancellations) for `--seconds`. A heartbeat
//! watchdog aborts the process if the workers stop making progress — a
//! hang is exactly the failure class this driver exists to catch. The run
//! log goes to stderr and a JSON summary to `results/chaos.json` (the CI
//! artifact).
//!
//! Invariants checked continuously:
//! * every request returns an answer or a clean `Overloaded` shed;
//! * `full`-quality answers are bit-identical to a fault-free reference;
//! * degraded answers always carry a reason;
//!
//! and at the end: with faults disarmed, the service returns to
//! full-quality reference-identical answers.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin chaos [-- --seconds 30]
//! ```

use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::io::{Read, Write};

use serde::Serialize;
use sqe_bench::report::write_json;
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::failpoint::{self, Action};
use sqe_core::{CancelToken, DeltaConfig, Quality, SitCatalog};
use sqe_engine::{Database, Predicate, SpjQuery};
use sqe_server::{FrontDoor, QuotaConfig, TenantConfig};
use sqe_service::{Budget, DpThreadsMode, EstimationService, ServiceConfig, ServiceError};

/// Deterministic xorshift64* stream per worker.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[derive(Serialize)]
struct ChaosReport {
    seconds: u64,
    workers: usize,
    requests: u64,
    full: u64,
    degraded: u64,
    sheds: u64,
    quarantines: u64,
    installs: u64,
    /// Full-answer divergences plus label violations observed mid-run.
    violations: u64,
    degrade_reasons: Vec<u64>,
    recovered_full_quality: bool,
    server: ServerPhase,
}

/// Results of the front-end phase: the reactor's three loss failpoints
/// (`server::accept`, `server::read`, `server::respond`) plus a
/// mid-request `server::handle` panic, driven over real loopback sockets.
#[derive(Serialize)]
struct ServerPhase {
    requests: u64,
    responses: u64,
    lost_accept: u64,
    lost_read: u64,
    lost_respond: u64,
    handler_panics: u64,
    answered_500: u64,
    /// `requests == responses + respond_failures` held exactly.
    accounting_exact: bool,
    /// Tenant + global in-flight pools read zero after the load.
    pools_idle: bool,
    /// A clean request answered 200/full after disarming.
    recovered: bool,
}

/// Drives the TCP front end with all four server failpoints armed and
/// checks that lost requests never corrupt the admission accounting.
fn server_phase(db: &Database, pool: &SitCatalog, workload: &[SpjQuery]) -> ServerPhase {
    #[derive(Serialize)]
    struct Wire {
        tables: Vec<u32>,
        predicates: Vec<Predicate>,
        deadline_ms: Option<u64>,
    }
    let door = Arc::new(FrontDoor::new(8));
    let tenant = door.add_tenant(
        "chaos",
        db.clone(),
        pool.clone(),
        TenantConfig {
            quota: QuotaConfig {
                rate: 1e6,
                burst: 1e6,
                max_in_flight: 8,
                deadline_ceiling: Duration::from_secs(5),
            },
            service: ServiceConfig::default(),
            delta: DeltaConfig::default(),
        },
    );
    let handle = sqe_server::spawn(Arc::clone(&door), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();
    let roundtrip = |raw: &[u8]| -> Option<String> {
        let mut stream = std::net::TcpStream::connect(addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        stream.write_all(raw).ok()?;
        let mut out = Vec::new();
        stream.read_to_end(&mut out).ok()?;
        String::from_utf8(out)
            .ok()
            .filter(|t| t.starts_with("HTTP/1.1 "))
    };
    let raw_estimate = |q: &SpjQuery| {
        let body = serde_json::to_string(&Wire {
            tables: q.tables.iter().map(|t| t.0).collect(),
            predicates: q.predicates.clone(),
            deadline_ms: Some(5_000),
        })
        .expect("estimate body");
        format!(
            "POST /v1/chaos/estimate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    };

    // Quiet the injected handler panics (the reactor catches them).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    failpoint::arm_with("server::accept", Action::Error, 4, None, 91);
    failpoint::arm_with("server::read", Action::Error, 4, None, 92);
    failpoint::arm_with("server::respond", Action::Error, 4, None, 93);
    failpoint::arm_with("server::handle", Action::Panic, 6, None, 94);
    let mut ok_200 = 0u64;
    let mut answered_500 = 0u64;
    let mut lost = 0u64;
    for i in 0..160usize {
        let raw = raw_estimate(&workload[i % workload.len()]);
        match roundtrip(raw.as_bytes()) {
            Some(resp) if resp.contains("200 OK") => ok_200 += 1,
            Some(_) => answered_500 += 1,
            None => lost += 1,
        }
    }
    for site in [
        "server::accept",
        "server::read",
        "server::respond",
        "server::handle",
    ] {
        failpoint::disarm(site);
    }
    std::panic::set_hook(prev_hook);

    // Recovery probe after disarming.
    let recovered = roundtrip(raw_estimate(&workload[0]).as_bytes())
        .is_some_and(|r| r.contains("200 OK") && r.contains("\"quality\""));
    let stats = Arc::clone(handle.stats());
    handle.shutdown();

    let requests = stats.requests.load(Ordering::Relaxed);
    let responses = stats.responses.load(Ordering::Relaxed);
    let respond_failures = stats.respond_failures.load(Ordering::Relaxed);
    let phase = ServerPhase {
        requests,
        responses,
        lost_accept: stats.accept_failures.load(Ordering::Relaxed),
        lost_read: stats.read_failures.load(Ordering::Relaxed),
        lost_respond: respond_failures,
        handler_panics: stats.handler_panics.load(Ordering::Relaxed),
        answered_500,
        accounting_exact: requests == responses + respond_failures,
        pools_idle: tenant.admission().in_flight() == 0 && door.global_admission().in_flight() == 0,
        recovered,
    };
    eprintln!(
        "chaos: server phase — {ok_200} ok / {answered_500} 500s / {lost} lost \
         (accept {} read {} respond {} panics {}), accounting_exact={} pools_idle={}",
        phase.lost_accept,
        phase.lost_read,
        phase.lost_respond,
        phase.handler_panics,
        phase.accounting_exact,
        phase.pools_idle
    );
    phase
}

fn random_budget(rng: &mut Rng) -> Budget {
    match rng.next() % 4 {
        0 => Budget::unlimited(),
        1 => Budget::unlimited().with_deadline(Duration::from_micros(50 + rng.next() % 5000)),
        2 => Budget::unlimited().with_quota(rng.next() % 500),
        _ => {
            let c = CancelToken::new();
            if rng.next().is_multiple_of(2) {
                c.cancel();
            }
            Budget::unlimited().with_cancel(c)
        }
    }
}

fn main() {
    let args = Args::parse();
    let seconds: u64 = args.get("seconds", 30);
    let setup = Setup::new(SetupConfig::from_args(&args));
    let joins: usize = args.get("joins", 3);
    let pool_i: usize = args.get("pool", 1);

    eprintln!("chaos: generating workload and J{pool_i} pool ...");
    let workload = setup.workload(joins);
    let pool = setup.pool(&workload, pool_i);
    let db = Arc::new(setup.snowflake.db);
    let svc = Arc::new(EstimationService::new(
        Arc::clone(&db),
        pool.clone(),
        ServiceConfig {
            dp_threads: DpThreadsMode::Fixed(std::num::NonZeroUsize::new(2).unwrap()),
            max_in_flight: 32,
            ..ServiceConfig::default()
        },
    ));

    // Fault-free reference answers, computed before any failpoint arms.
    let reference: Vec<f64> = workload
        .iter()
        .map(|q| svc.estimate(q).selectivity)
        .collect();
    // The reference pass warmed the snapshot cache; start chaos cold.
    svc.install(pool.clone(), None);

    // Silence the panic reports injected faults produce on purpose, but
    // let genuine failures through.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // An injected panic, or its propagation out of a poisoned
        // rank-parallel peel slot, is expected noise; anything else is a
        // genuine failure and gets the normal report.
        let expected = |s: &str| {
            s.contains("failpoint")
                || s.contains("sibling worker")
                || s.contains("scoped thread panicked")
        };
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| expected(s))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| expected(s));
        if !injected {
            prev_hook(info);
        }
    }));

    failpoint::arm_with("dp::solve_mask", Action::Panic, 20_000, None, 11);
    failpoint::arm_with("par::publish", Action::Panic, 2_000, None, 22);
    failpoint::arm_with("service::cache_insert", Action::Sleep(1), 256, None, 33);
    failpoint::arm_with("service::install", Action::Sleep(2), 4, None, 44);
    // The bound sketch runs on every budgeted answer (panic-isolated), so
    // its failpoint exercises the backend-panic floor under load too.
    failpoint::arm_with("pessimistic::bound", Action::Panic, 10_000, None, 55);
    eprintln!("chaos: armed {:?}", failpoint::armed_sites());

    let heartbeat = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let full = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let workers = 8usize;

    // Watchdog: if no worker completes a request for 30 s, the run is
    // hung — print a diagnosis and abort with a nonzero exit code.
    let watchdog = {
        let heartbeat = Arc::clone(&heartbeat);
        std::thread::spawn(move || {
            let mut last = 0u64;
            loop {
                std::thread::sleep(Duration::from_secs(5));
                let now = heartbeat.load(Ordering::Relaxed);
                if now == u64::MAX {
                    return; // run finished
                }
                if now == last {
                    let mut strikes = 1;
                    while strikes < 6 {
                        std::thread::sleep(Duration::from_secs(5));
                        let again = heartbeat.load(Ordering::Relaxed);
                        if again == u64::MAX {
                            return;
                        }
                        if again != now {
                            break;
                        }
                        strikes += 1;
                    }
                    if strikes >= 6 {
                        eprintln!("chaos: WATCHDOG FIRED — no progress for 30 s, aborting");
                        exit(2);
                    }
                }
                last = heartbeat.load(Ordering::Relaxed);
            }
        })
    };

    std::thread::scope(|s| {
        for worker in 0..workers as u64 {
            let (svc, workload, reference, pool) = (&svc, &workload, &reference, &pool);
            let (heartbeat, violations, full, degraded, sheds, stop) =
                (&heartbeat, &violations, &full, &degraded, &sheds, &stop);
            s.spawn(move || {
                let mut rng = Rng(0xD1B54A32D192ED03 ^ (worker + 1));
                let mut round = 0u64;
                while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                    round += 1;
                    if worker == 0 && round.is_multiple_of(64) {
                        // Concurrent snapshot swaps keep caches cold and
                        // race installs against in-flight estimates.
                        svc.install(pool.clone(), None);
                    }
                    let idx = (rng.next() as usize) % workload.len();
                    let outcome =
                        svc.estimate_with_budget(&workload[idx], &random_budget(&mut rng));
                    match outcome {
                        Ok(e) => {
                            if e.quality == Quality::Full {
                                full.fetch_add(1, Ordering::Relaxed);
                                if e.selectivity.to_bits() != reference[idx].to_bits() {
                                    eprintln!(
                                        "chaos: VIOLATION — full answer for query {idx} \
                                         diverged from reference"
                                    );
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                degraded.fetch_add(1, Ordering::Relaxed);
                                if e.degraded_reason.is_none() {
                                    eprintln!(
                                        "chaos: VIOLATION — degraded answer without a reason"
                                    );
                                    violations.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(ServiceError::Overloaded { .. }) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    heartbeat.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Progress log every ~2 s while the workers run.
        while Instant::now() < deadline {
            std::thread::sleep(
                Duration::from_secs(2).min(deadline.saturating_duration_since(Instant::now())),
            );
            eprintln!(
                "chaos: t={:>4.1}s requests={} full={} degraded={} sheds={}",
                seconds as f64
                    - deadline
                        .saturating_duration_since(Instant::now())
                        .as_secs_f64(),
                heartbeat.load(Ordering::Relaxed),
                full.load(Ordering::Relaxed),
                degraded.load(Ordering::Relaxed),
                sheds.load(Ordering::Relaxed),
            );
        }
    });
    heartbeat.store(u64::MAX, Ordering::Relaxed);
    let _ = watchdog.join();

    failpoint::disarm_all();
    let _ = std::panic::take_hook(); // drop the filter hook

    // Recovery: faults off, no budget — every answer must be Full and
    // bit-identical to the fault-free reference.
    let mut recovered = true;
    for (i, (q, want)) in workload.iter().zip(&reference).enumerate() {
        match svc.estimate_with_budget(q, &Budget::unlimited()) {
            Ok(e) if e.quality == Quality::Full && e.selectivity.to_bits() == want.to_bits() => {}
            Ok(e) => {
                eprintln!(
                    "chaos: VIOLATION — post-chaos query {i} came back {:?} instead of a \
                     reference-identical full answer",
                    e.quality
                );
                recovered = false;
            }
            Err(e) => {
                eprintln!("chaos: VIOLATION — post-chaos query {i} shed: {e}");
                recovered = false;
            }
        }
    }

    // Front-end phase: reactor failpoints over real sockets.
    let server = server_phase(&db, &pool, &workload);

    let stats = svc.stats();
    let report = ChaosReport {
        seconds,
        workers,
        requests: full.load(Ordering::Relaxed)
            + degraded.load(Ordering::Relaxed)
            + sheds.load(Ordering::Relaxed),
        full: full.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        sheds: sheds.load(Ordering::Relaxed),
        quarantines: stats.quarantines,
        installs: stats.installs,
        violations: violations.load(Ordering::Relaxed),
        degrade_reasons: stats.degrade_reasons.to_vec(),
        recovered_full_quality: recovered,
        server,
    };
    println!(
        "chaos: done — {} requests ({} full / {} degraded / {} sheds), \
         {} quarantines, {} installs",
        report.requests,
        report.full,
        report.degraded,
        report.sheds,
        report.quarantines,
        report.installs
    );
    match write_json("chaos", &report) {
        Ok(p) => println!("chaos: report written to {}", p.display()),
        Err(e) => eprintln!("chaos: could not write report: {e}"),
    }

    let server_ok = report.server.accounting_exact
        && report.server.pools_idle
        && report.server.recovered
        && report.server.lost_accept > 0
        && report.server.lost_read > 0
        && report.server.lost_respond > 0
        && report.server.handler_panics > 0;
    if report.violations > 0 || !recovered || report.full == 0 || !server_ok {
        eprintln!("chaos: FAILED");
        exit(1);
    }
    println!("chaos: PASS — no hangs, no mislabels, exact front-end accounting, clean recovery");
}

//! Figure 5 — per-query absolute cardinality error: GVM (x axis) vs
//! GS-nInd (y axis), on a mixed 3- to 7-way join workload. Both use the
//! *same* ranking metric (nInd), so any gap is due to `getSelectivity`
//! searching the full decomposition space rather than the view-matching
//! subset, not the improved error function.
//!
//! The paper's claim: every point lies on or below x = y, with errors up to
//! ~80% lower.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin fig5 [-- --queries 100 --pool 2]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::{eval_query, Args, Setup, SetupConfig, Technique};
use sqe_core::ErrorMode;
use sqe_engine::CardinalityOracle;

#[derive(Serialize)]
struct Point {
    query: usize,
    joins: usize,
    gvm_error: f64,
    gs_nind_error: f64,
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let pool_i: usize = args.get("pool", 2);

    eprintln!("generating mixed 3..7-way join workload ...");
    let workload = setup.mixed_workload(&[3, 4, 5, 6, 7]);
    eprintln!("building J{pool_i} SIT pool ...");
    let pool = setup.pool(&workload, pool_i);
    eprintln!(
        "pool: {} SITs; evaluating {} queries",
        pool.len(),
        workload.len()
    );

    let db = &setup.snowflake.db;
    let mut oracle = CardinalityOracle::new(db);
    let mut points = Vec::with_capacity(workload.len());
    for (i, q) in workload.iter().enumerate() {
        let gvm = eval_query(db, &mut oracle, q, &pool, Technique::Gvm);
        let gs = eval_query(db, &mut oracle, q, &pool, Technique::Gs(ErrorMode::NInd));
        points.push(Point {
            query: i,
            joins: q.join_count(),
            gvm_error: gvm.avg_abs_error,
            gs_nind_error: gs.avg_abs_error,
        });
    }

    println!("Figure 5 — scatter: GVM error (x) vs GS-nInd error (y), J{pool_i} pool\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.query.to_string(),
                p.joins.to_string(),
                fmt_num(p.gvm_error),
                fmt_num(p.gs_nind_error),
                if p.gs_nind_error <= p.gvm_error * (1.0 + 1e-9) {
                    "<= x".into()
                } else {
                    "ABOVE x=y".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["q", "J", "GVM err", "GS-nInd err", "vs x=y"], &rows)
    );

    let below = points
        .iter()
        .filter(|p| p.gs_nind_error <= p.gvm_error * (1.0 + 1e-9))
        .count();
    let reductions: Vec<f64> = points
        .iter()
        .filter(|p| p.gvm_error > 0.0)
        .map(|p| 1.0 - p.gs_nind_error / p.gvm_error)
        .collect();
    let max_red = reductions.iter().cloned().fold(0.0f64, f64::max);
    let avg_red = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!(
        "\n{}/{} points on or below x = y; error reduction avg {:.0}%, max {:.0}% \
         (paper: all below, up to ~80%)",
        below,
        points.len(),
        avg_red * 100.0,
        max_red * 100.0
    );

    match write_json("fig5", &points) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

//! Lemma 1: the number of decompositions `T(n)` against its factorial
//! bounds and the dynamic program's `O(3ⁿ)` state count.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin lemma1 [-- --max-n 14]
//! ```

use serde::Serialize;
use sqe_bench::report::{render_table, write_json};
use sqe_bench::Args;
use sqe_core::{count_decompositions, decomposition_bounds};

#[derive(Serialize)]
struct Row {
    n: usize,
    lower_bound: u128,
    t_n: u128,
    upper_bound: u128,
    dp_states: u128,
}

fn main() {
    let args = Args::parse();
    let max_n: usize = args.get("max-n", 14);

    let rows: Vec<Row> = (1..=max_n)
        .map(|n| {
            let (lo, hi) = decomposition_bounds(n);
            Row {
                n,
                lower_bound: lo,
                t_n: count_decompositions(n),
                upper_bound: hi,
                dp_states: 3u128.saturating_pow(n as u32),
            }
        })
        .collect();

    println!("Lemma 1 — decompositions of Sel(p1..pn): 0.5·(n+1)! <= T(n) <= 1.5^n·n!");
    println!("getSelectivity explores O(3^n) states instead.\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.lower_bound.to_string(),
                r.t_n.to_string(),
                r.upper_bound.to_string(),
                r.dp_states.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["n", "0.5·(n+1)!", "T(n)", "1.5^n·n!", "3^n"], &table)
    );

    for r in &rows {
        assert!(
            r.lower_bound <= r.t_n && r.t_n <= r.upper_bound,
            "n={}",
            r.n
        );
    }
    println!("bounds verified for n = 1..={max_n}");
    match write_json("lemma1", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

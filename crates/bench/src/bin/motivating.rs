//! Figures 1 and 2 — the motivating example.
//!
//! A skewed lineitem/orders/customer database where both filter predicates
//! interact with the joins. Shows, in order:
//!
//! 1. `noSit`: base statistics + independence — severe underestimate;
//! 2. `SIT(total_price | L⋈O)` alone (Figure 1(b)) — partial fix;
//! 3. `SIT(nation | O⋈C)` alone (Figure 1(c)) — partial fix;
//! 4. both SITs via `getSelectivity` (Figure 2) — view matching cannot use
//!    them together, the conditional-selectivity framework can.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin motivating
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::Args;
use sqe_core::{ErrorMode, GreedyViewMatching, SelectivityEstimator, Sit, SitCatalog};
use sqe_datagen::scenarios::{motivating_scenario, MotivatingConfig};
use sqe_engine::CardinalityOracle;

#[derive(Serialize)]
struct Row {
    setting: String,
    estimate: f64,
    truth: f64,
    ratio: f64,
}

fn main() {
    let args = Args::parse();
    let scenario = motivating_scenario(MotivatingConfig {
        orders: args.get("orders", 5_000),
        customers: args.get("customers", 1_000),
        theta: args.get("theta", 1.2),
        ..MotivatingConfig::default()
    });
    let db = &scenario.db;
    let q = &scenario.query;

    let mut oracle = CardinalityOracle::new(db);
    let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap() as f64;

    // Base histograms for every referenced column.
    let mut base = SitCatalog::new();
    for p in &q.predicates {
        for col in p.columns().iter() {
            base.add(Sit::build_base(db, col).expect("base histogram"));
        }
    }
    let sit_price =
        Sit::build(db, scenario.col_price, vec![scenario.join_lo]).expect("SIT(total_price | L⋈O)");
    let sit_nation =
        Sit::build(db, scenario.col_nation, vec![scenario.join_oc]).expect("SIT(nation | O⋈C)");

    let with = |sits: &[&Sit]| -> SitCatalog {
        let mut c = base.clone();
        for s in sits {
            c.add((*s).clone());
        }
        c
    };
    let estimate = |catalog: &SitCatalog| -> f64 {
        let mut est = SelectivityEstimator::new(db, q, catalog, ErrorMode::Diff);
        let all = est.context().all();
        est.cardinality(all)
    };

    let cat_price = with(&[&sit_price]);
    let cat_nation = with(&[&sit_nation]);
    let cat_both = with(&[&sit_price, &sit_nation]);

    let mut rows: Vec<Row> = Vec::new();
    let mut push = |setting: &str, estimate: f64| {
        rows.push(Row {
            setting: setting.to_string(),
            estimate,
            truth,
            ratio: if truth > 0.0 {
                estimate / truth
            } else {
                f64::NAN
            },
        });
    };
    push("noSit (independence)", estimate(&base));
    push("SIT(price|L⋈O) only   (Fig 1b)", estimate(&cat_price));
    push("SIT(nation|O⋈C) only  (Fig 1c)", estimate(&cat_nation));
    // GVM with both SITs available: the laminar view-matching constraint
    // allows at most one of them.
    let mut gvm = GreedyViewMatching::new(db, q, &cat_both);
    let all = gvm.context().all();
    push("GVM, both SITs available", gvm.cardinality(all));
    push("getSelectivity, both SITs (Fig 2)", estimate(&cat_both));

    println!("Motivating example (Figures 1-2)");
    println!("query: {}", q.display(db));
    println!("true cardinality: {truth}\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.setting.clone(), fmt_num(r.estimate), fmt_num(r.ratio)])
        .collect();
    println!(
        "{}",
        render_table(&["setting", "estimated card", "est/true"], &table)
    );
    println!("expected shape: each single SIT improves on noSit; only the");
    println!("conditional-selectivity framework uses both and gets closest to 1.0");

    match write_json("motivating", &rows) {
        Ok(p) => println!("\nresults written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

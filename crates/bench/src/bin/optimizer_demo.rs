//! §4 demonstration — coupling `getSelectivity` with a Cascades-style memo
//! changes (and improves) the plans the optimizer picks.
//!
//! For each workload query: build the memo, explore to fixpoint, estimate
//! every group twice (noSit vs a `J2` SIT pool), extract the best plan
//! under each, and score both plans with the *true* cost (Σ of true
//! intermediate cardinalities).
//!
//! ```text
//! cargo run --release -p sqe-bench --bin optimizer_demo [-- --queries 20]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{ErrorMode, NoSitEstimator};
use sqe_engine::CardinalityOracle;
use sqe_optimizer::{evaluate_true_cost, explore, extract_best_plan, Memo, MemoEstimator};

#[derive(Serialize)]
struct Row {
    query: usize,
    groups: usize,
    entries: usize,
    nosit_true_cost: f64,
    sit_true_cost: f64,
    plans_differ: bool,
}

fn main() {
    let args = Args::parse();
    let mut config = SetupConfig::from_args(&args);
    if config.queries == SetupConfig::default().queries {
        config.queries = 20;
    }
    let setup = Setup::new(config);
    let joins: usize = args.get("joins", 4);
    let db = &setup.snowflake.db;

    let workload = setup.workload(joins);
    eprintln!("building J2 pool ...");
    let pool = setup.pool(&workload, 2);
    let nosit = NoSitEstimator::from_catalog(&pool);

    let mut rows = Vec::new();
    let mut oracle = CardinalityOracle::new(db);
    for (i, q) in workload.iter().enumerate() {
        let mut memo = Memo::new(db, q);
        explore(&mut memo);

        let mut base_est = MemoEstimator::new(db, q, nosit.catalog(), ErrorMode::NInd);
        base_est.estimate_memo(&memo);
        let (base_plan, _) = extract_best_plan(&memo, &base_est).expect("plan under noSit");

        let mut sit_est = MemoEstimator::new(db, q, &pool, ErrorMode::Diff);
        sit_est.estimate_memo(&memo);
        let (sit_plan, _) = extract_best_plan(&memo, &sit_est).expect("plan under SITs");

        let base_cost = evaluate_true_cost(&memo, &mut oracle, &base_plan).unwrap();
        let sit_cost = evaluate_true_cost(&memo, &mut oracle, &sit_plan).unwrap();
        if i < 3 {
            eprintln!("q{i}: noSit plan {base_plan}");
            eprintln!("q{i}: SIT   plan {sit_plan}");
        }
        rows.push(Row {
            query: i,
            groups: memo.group_count(),
            entries: memo.entry_count(),
            nosit_true_cost: base_cost,
            sit_true_cost: sit_cost,
            plans_differ: base_plan != sit_plan,
        });
    }

    println!("§4 — memo-coupled estimation: true plan costs (Σ intermediate cardinalities)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.query.to_string(),
                r.groups.to_string(),
                r.entries.to_string(),
                fmt_num(r.nosit_true_cost),
                fmt_num(r.sit_true_cost),
                if r.plans_differ { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "q",
                "groups",
                "entries",
                "noSit cost",
                "SIT cost",
                "differ?"
            ],
            &table
        )
    );
    let differ = rows.iter().filter(|r| r.plans_differ).count();
    let better = rows
        .iter()
        .filter(|r| r.sit_true_cost < r.nosit_true_cost * (1.0 - 1e-9))
        .count();
    let worse = rows
        .iter()
        .filter(|r| r.sit_true_cost > r.nosit_true_cost * (1.0 + 1e-9))
        .count();
    println!(
        "\n{differ}/{} queries pick a different plan with SITs; {better} strictly cheaper, {worse} costlier",
        rows.len()
    );

    match write_json("optimizer_demo", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

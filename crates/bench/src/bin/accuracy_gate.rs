//! CI accuracy-regression gate.
//!
//! Compares a fresh `ACCURACY.json` (from the `accuracy` binary) against
//! the committed baseline and exits non-zero when any gated metric
//! regressed beyond tolerance — see `sqe_oracle::gate` for the tolerance
//! model and `EXPERIMENTS.md` ("Accuracy methodology") for how to
//! re-baseline after an intentional change.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin accuracy_gate \
//!     [-- --baseline results/ACCURACY.baseline.json --current ACCURACY.json \
//!         --ratio 1.10 --slack 0.05]
//! ```

use std::path::Path;

use sqe_bench::Args;
use sqe_oracle::{compare_reports, AccuracyReport, GateConfig};

fn load(path: &str) -> AccuracyReport {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read report '{path}': {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("cannot parse report '{path}': {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args = Args::parse();
    // Resolve relative to the repo root so the gate works from any cwd
    // cargo uses.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let resolve = |p: String| {
        if Path::new(&p).exists() {
            p
        } else {
            root.join(&p).to_string_lossy().into_owned()
        }
    };
    let baseline_path = resolve(args.get_str("baseline", "results/ACCURACY.baseline.json"));
    let current_path = resolve(args.get_str("current", "ACCURACY.json"));
    let cfg = GateConfig {
        max_ratio: args.get("ratio", GateConfig::default().max_ratio),
        abs_slack: args.get("slack", GateConfig::default().abs_slack),
    };

    let baseline = load(&baseline_path);
    let current = load(&current_path);
    let violations = compare_reports(&baseline, &current, cfg);
    if violations.is_empty() {
        println!(
            "accuracy gate PASS: {} within ratio {} + slack {} of {}",
            current_path, cfg.max_ratio, cfg.abs_slack, baseline_path
        );
        return;
    }
    eprintln!(
        "accuracy gate FAIL ({} violation(s) vs {}):",
        violations.len(),
        baseline_path
    );
    for v in &violations {
        eprintln!("  - {v}");
    }
    std::process::exit(1);
}

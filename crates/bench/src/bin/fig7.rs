//! Figure 7 (a, b, c) — average absolute cardinality error for 3-, 5- and
//! 7-way join workloads, across SIT pools `J0..J7`, for the five
//! techniques `noSit`, `GVM`, `GS-nInd`, `GS-Diff`, `GS-Opt`.
//!
//! Expected shape (the paper's): errors collapse as join-expression SITs
//! become available; `GS-Diff` tracks `GS-Opt` closely and beats `GS-nInd`;
//! the biggest marginal gains come from `J1`/`J2`; `noSit` stays flat.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin fig7 [-- --queries 100 --max-pool 7]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::run::eval_workload;
use sqe_bench::{Args, Setup, SetupConfig, Technique};
use sqe_engine::CardinalityOracle;

#[derive(Serialize)]
struct PoolRow {
    pool: String,
    sits: usize,
    errors: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct Panel {
    joins: usize,
    rows: Vec<PoolRow>,
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let max_pool: usize = args.get("max-pool", 7);
    let db = &setup.snowflake.db;
    let techniques = Technique::all();

    let mut panels = Vec::new();
    for (panel_idx, joins) in [3usize, 5, 7].into_iter().enumerate() {
        eprintln!(
            "=== Figure 7({}) — {joins}-way joins ===",
            (b'a' + panel_idx as u8) as char
        );
        let workload = setup.workload(joins);
        let mut oracle = CardinalityOracle::new(db);
        let mut rows = Vec::new();
        for i in 0..=max_pool.min(joins) {
            eprintln!("  building pool J{i} ...");
            let pool = setup.pool(&workload, i);
            let mut errors = Vec::new();
            for t in techniques {
                let (mean, _) = eval_workload(db, &mut oracle, &workload, &pool, t);
                errors.push((t.label().to_string(), mean));
                eprintln!("    {:8} : {}", t.label(), fmt_num(mean));
            }
            rows.push(PoolRow {
                pool: format!("J{i}"),
                sits: pool.len(),
                errors,
            });
        }
        panels.push(Panel { joins, rows });
    }

    for (panel_idx, panel) in panels.iter().enumerate() {
        println!(
            "\nFigure 7({}) — {}-way join queries: avg absolute cardinality error",
            (b'a' + panel_idx as u8) as char,
            panel.joins
        );
        let mut headers: Vec<&str> = vec!["pool", "#SITs"];
        for t in &techniques {
            headers.push(t.label());
        }
        let table: Vec<Vec<String>> = panel
            .rows
            .iter()
            .map(|r| {
                let mut row = vec![r.pool.clone(), r.sits.to_string()];
                row.extend(r.errors.iter().map(|(_, e)| fmt_num(*e)));
                row
            })
            .collect();
        println!("{}", render_table(&headers, &table));
    }
    println!("\npaper shape: error collapses with larger pools; GS-Diff ≈ GS-Opt < GS-nInd < GVM; noSit flat");

    match write_json("fig7", &panels) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

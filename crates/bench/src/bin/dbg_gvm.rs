use sqe_bench::{Setup, SetupConfig};
use sqe_core::{ErrorMode, GreedyViewMatching, PredSet, QueryContext, SelectivityEstimator};
use sqe_engine::CardinalityOracle;

fn main() {
    let setup = Setup::new(SetupConfig {
        queries: 10,
        ..SetupConfig::default()
    });
    let wl = setup.mixed_workload(&[7]);
    let q = &wl[0];
    let pool = setup.pool(&wl, 2);
    let db = &setup.snowflake.db;
    let ctx = QueryContext::new(db, q);
    let mut oracle = CardinalityOracle::new(db);
    let mut gvm = GreedyViewMatching::new(db, q, &pool);
    let mut gs = SelectivityEstimator::new(db, q, &pool, ErrorMode::NInd);
    let all = ctx.all();
    let mut worst = (0.0f64, PredSet::EMPTY, 0.0, 0.0);
    for p in all.subsets() {
        let truth = oracle
            .cardinality(&ctx.tables_of(p), &ctx.predicates_of(p))
            .unwrap() as f64;
        let e_gvm = gvm.cardinality(p);
        let err = (e_gvm - truth).abs();
        if err > worst.0 {
            worst = (err, p, e_gvm, truth);
        }
    }
    let (err, p, est, truth) = worst;
    println!("worst subset {p}: gvm_est={est:.3e} truth={truth:.3e} err={err:.3e}");
    for i in p.iter() {
        println!("  p{i} = {}", ctx.predicate(i));
    }
    println!(
        "tables(P) = {:?} cross = {:.3e}",
        ctx.tables_of(p),
        ctx.cross_product_size(p) as f64
    );
    println!("gvm sel = {:.3e}", gvm.selectivity(p));
    let (s, e) = gs.get_selectivity(p);
    println!(
        "gs sel = {s:.3e} err {e}; gs est = {:.3e}",
        gs.cardinality(p)
    );
}

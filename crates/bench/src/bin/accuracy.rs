//! Accuracy measurement against ground truth (`sqe-oracle`).
//!
//! Runs the differential accuracy harness over the seeded oracle scenarios
//! and writes the committed report:
//!
//! * `ACCURACY.json` (repo root) — the current run, uploaded by CI;
//! * `results/ACCURACY.baseline.json` — only with `--write-baseline`, the
//!   reference the `accuracy_gate` binary compares against.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin accuracy [-- --tier smoke|full --write-baseline]
//! ```

use sqe_bench::report::{fmt_num, render_table, write_json, write_json_root};
use sqe_bench::Args;
use sqe_oracle::{measure_accuracy, OracleTier};

fn main() {
    let args = Args::parse();
    let tier_str = args.get_str("tier", "smoke");
    let Some(tier) = OracleTier::parse(&tier_str) else {
        eprintln!("unknown --tier '{tier_str}' (expected 'smoke' or 'full')");
        std::process::exit(2);
    };

    eprintln!("measuring estimator accuracy, {} tier ...", tier.label());
    let report = measure_accuracy(tier);

    println!(
        "Estimator accuracy vs ground truth ({} tier)\n",
        report.tier
    );
    let mut rows = Vec::new();
    for sc in &report.scenarios {
        for v in &sc.variants {
            rows.push(vec![
                sc.scenario.to_string(),
                v.variant.clone(),
                v.queries.to_string(),
                fmt_num(v.median_q_error),
                fmt_num(v.p95_q_error),
                fmt_num(v.max_q_error),
                fmt_num(v.median_rel_error),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["scenario", "variant", "q", "med qerr", "p95 qerr", "max qerr", "med rel",],
            &rows,
        )
    );

    if !report.beam.is_empty() {
        println!("\nBeam error envelope on the wide scenarios (diff-j2, width swept)\n");
        let mut rows = Vec::new();
        for sc in &report.beam {
            for p in &sc.points {
                rows.push(vec![
                    sc.scenario.to_string(),
                    p.width.to_string(),
                    fmt_num(p.median_q_error),
                    fmt_num(p.max_q_error),
                    fmt_num(sc.exact_max_q_error),
                    fmt_num(p.max_q_ratio_vs_exact),
                ]);
            }
        }
        println!(
            "{}",
            render_table(
                &[
                    "scenario",
                    "width",
                    "med qerr",
                    "max qerr",
                    "exact max",
                    "vs exact",
                ],
                &rows,
            )
        );
    }

    if !report.bounds.is_empty() {
        println!("\nPessimistic upper-bound audit (bound / true cardinality)\n");
        let mut rows = Vec::new();
        for b in &report.bounds {
            rows.push(vec![
                b.scenario.to_string(),
                b.queries.to_string(),
                b.underestimates.to_string(),
                fmt_num(b.median_ratio),
                fmt_num(b.max_ratio),
            ]);
        }
        println!(
            "{}",
            render_table(&["scenario", "q", "under", "med ratio", "max ratio"], &rows,)
        );
    }

    match write_json_root("ACCURACY", &report) {
        Ok(p) => println!("report written to {}", p.display()),
        Err(e) => {
            eprintln!("could not write ACCURACY.json: {e}");
            std::process::exit(1);
        }
    }
    if args.flag("write-baseline") {
        match write_json("ACCURACY.baseline", &report) {
            Ok(p) => println!("baseline written to {}", p.display()),
            Err(e) => {
                eprintln!("could not write baseline: {e}");
                std::process::exit(1);
            }
        }
    }
}

//! Figure 6 — efficiency: average number of view-matching calls per query,
//! `getSelectivity` (GS-nInd) vs `GVM`, for 3- to 7-way join workloads.
//!
//! Both share the same candidate-matching subroutine; `getSelectivity`
//! memoizes across the sub-queries of one query while `GVM` re-runs its
//! greedy pass per request, so the paper reports GVM issuing up to ~5× as
//! many calls.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin fig6 [-- --queries 100 --pool 2]
//! ```

use serde::Serialize;
use sqe_bench::report::{render_table, write_json};
use sqe_bench::{eval_query, Args, Setup, SetupConfig, Technique};
use sqe_core::ErrorMode;
use sqe_engine::CardinalityOracle;

#[derive(Serialize)]
struct Row {
    joins: usize,
    gs_calls: f64,
    gvm_calls: f64,
    ratio: f64,
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let pool_i: usize = args.get("pool", 2);
    let db = &setup.snowflake.db;

    let mut rows = Vec::new();
    for joins in 3..=7 {
        eprintln!("J = {joins}: generating workload and J{pool_i} pool ...");
        let workload = setup.workload(joins);
        let pool = setup.pool(&workload, pool_i.min(joins));
        let mut oracle = CardinalityOracle::new(db);
        let (mut gs_total, mut gvm_total) = (0u64, 0u64);
        for q in &workload {
            gs_total +=
                eval_query(db, &mut oracle, q, &pool, Technique::Gs(ErrorMode::NInd)).vm_calls;
            gvm_total += eval_query(db, &mut oracle, q, &pool, Technique::Gvm).vm_calls;
        }
        let n = workload.len() as f64;
        rows.push(Row {
            joins,
            gs_calls: gs_total as f64 / n,
            gvm_calls: gvm_total as f64 / n,
            ratio: gvm_total as f64 / gs_total.max(1) as f64,
        });
    }

    println!("Figure 6 — avg view-matching calls per query (all sub-queries requested)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}-way", r.joins),
                format!("{:.0}", r.gs_calls),
                format!("{:.0}", r.gvm_calls),
                format!("{:.1}x", r.ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["workload", "getSelectivity", "GVM", "GVM/GS"], &table)
    );
    println!("\npaper shape: GVM issues multiples (up to ~5x) of GS's calls, growing with J");

    match write_json("fig6", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

//! Microbenchmarks for the `sqe-histogram` hot kernels: branchless binary
//! searches, the batched 4-way search, the CDF range kernel, and the
//! merge-scan histogram join — each against its straightforward reference.
//!
//! Every variant pair is checked for equivalence while being timed: the
//! branchless searches and the merge-scan join must match their references
//! **bit for bit** (they are drop-in replacements on the estimator's hot
//! path); the CDF range kernel is allowed the documented prefix-subtraction
//! rounding versus a full bucket scan and is checked to a relative
//! tolerance instead.
//!
//! Timings are medians over `--reps` runs of a fixed op batch, reported as
//! ns/op. Results are printed as a table and written to
//! **`results/kernels.json`** (committed, so kernel regressions across PRs
//! are diffable). The absolute numbers are host-dependent; the committed
//! baseline is for trend-watching, not cross-machine comparison.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin kernels_bench \
//!     [-- --buckets 200 --hists 64 --probes 4096 --reps 7]
//! ```

use std::time::Instant;

use serde::Serialize;
use sqe_bench::report::{render_table, round_us, write_json};
use sqe_bench::Args;
use sqe_histogram::{count_lt, count_lt4, Bucket, Histogram};

#[derive(Serialize)]
struct KernelRow {
    /// Kernel family: `search`, `search4`, `range`, `eq`, `join`.
    kernel: String,
    /// `reference` or the optimized variant's name.
    variant: String,
    /// Median over `--reps` timed runs.
    ns_per_op: f64,
    /// Ops per timed run.
    ops: u64,
    /// Fold of all results — proves the work happened and pins equivalence
    /// across variants of the same kernel (bit-compared where documented).
    checksum: f64,
}

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Random disjoint sorted bucket list in the style of the histogram crate's
/// proptests: gaps allowed, occasional zero-distinct buckets.
fn random_hist(rng: &mut Rng, max_buckets: usize) -> Histogram {
    let nb = 1 + (rng.next() as usize) % max_buckets;
    let mut buckets = Vec::with_capacity(nb);
    let mut lo = -(rng.next() as i64 % 100);
    for _ in 0..nb {
        let hi = lo + (rng.next() % 40) as i64;
        let freq = 1.0 + (rng.next() % 1000) as f64 / 10.0;
        let distinct = if rng.next().is_multiple_of(16) {
            0.0
        } else {
            (1.0 + (rng.next() % 200) as f64 / 10.0).min((hi - lo + 1) as f64)
        };
        buckets.push(Bucket {
            lo,
            hi,
            freq,
            distinct,
        });
        lo = hi + 1 + (rng.next() % 5) as i64; // optional gap
    }
    Histogram::new(buckets, (rng.next() % 50) as f64)
}

/// Median ns/op over `reps` timed runs of `work` (which performs `ops`
/// operations and returns a checksum, folded to keep the work live).
///
/// `work` receives an opaque zero to fold into its accumulator: seeding the
/// sum through `black_box` every rep stops LLVM from treating the pure
/// computation as loop-invariant and hoisting it out of the timed region
/// (which would bench a register move, not the kernel).
fn time_ns_per_op(reps: usize, ops: u64, mut work: impl FnMut(f64) -> f64) -> (f64, f64) {
    let mut samples = Vec::with_capacity(reps);
    let mut checksum = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = std::hint::black_box(work(std::hint::black_box(0.0)));
        samples.push(start.elapsed().as_secs_f64() * 1e9 / ops as f64);
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], checksum)
}

fn main() {
    let args = Args::parse();
    let max_buckets: usize = args.get("buckets", 200);
    let hists: usize = args.get("hists", 64);
    let probes: usize = args.get("probes", 4096);
    let reps: usize = args.get("reps", 7);

    let mut rng = Rng(0x9E3779B97F4A7C15);
    let pool: Vec<Histogram> = (0..hists)
        .map(|_| random_hist(&mut rng, max_buckets))
        .collect();
    // Sorted bound columns for the raw-search benches. Probes are drawn
    // from each array's own elements (± jitter) so every comparison level
    // is a coin flip — the shape the estimator sees, where query bounds
    // land inside the histogram. Out-of-range probes would make the branchy
    // reference perfectly predictable and flatter it unfairly.
    let arrays: Vec<Vec<i64>> = pool
        .iter()
        .map(|h| h.buckets().iter().map(|b| b.hi).collect())
        .collect();
    let probe_sets: Vec<Vec<i64>> = arrays
        .iter()
        .map(|a| {
            (0..probes)
                .map(|_| a[(rng.next() as usize) % a.len()] + rng.in_range(-2, 2))
                .collect()
        })
        .collect();
    // Range predicates inside each histogram's bounds, for the same reason.
    let range_sets: Vec<Vec<(i64, i64)>> = pool
        .iter()
        .map(|h| {
            let (lo, hi) = h.bounds().expect("random_hist always has buckets");
            (0..probes)
                .map(|_| {
                    let a = rng.in_range(lo, hi);
                    let b = rng.in_range(lo, hi);
                    (a.min(b), a.max(b))
                })
                .collect()
        })
        .collect();

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut push = |kernel: &str, variant: &str, ns: f64, ops: u64, checksum: f64| {
        rows.push(KernelRow {
            kernel: kernel.to_string(),
            variant: variant.to_string(),
            ns_per_op: round_us(ns),
            ops,
            checksum,
        });
    };

    // --- search: branchless count_lt vs std partition_point -------------
    let search_ops = (arrays.len() * probes) as u64;
    let (ns_ref, sum_ref) = time_ns_per_op(reps, search_ops, |seed| {
        let mut acc = seed as usize;
        for (a, pv) in arrays.iter().zip(&probe_sets) {
            for &v in pv {
                acc += a.partition_point(|x| *x < v);
            }
        }
        acc as f64
    });
    push("search", "partition_point", ns_ref, search_ops, sum_ref);
    let (ns_opt, sum_opt) = time_ns_per_op(reps, search_ops, |seed| {
        let mut acc = seed as usize;
        for (a, pv) in arrays.iter().zip(&probe_sets) {
            for &v in pv {
                acc += count_lt(a, v);
            }
        }
        acc as f64
    });
    assert_eq!(sum_ref, sum_opt, "count_lt diverged from partition_point");
    push("search", "count_lt", ns_opt, search_ops, sum_opt);

    // --- search4: 4-way lockstep vs 4 scalar branchless calls -----------
    let quad_sets: Vec<Vec<[i64; 4]>> = probe_sets
        .iter()
        .map(|pv| {
            pv.chunks_exact(4)
                .map(|c| [c[0], c[1], c[2], c[3]])
                .collect()
        })
        .collect();
    let search4_ops = (arrays.len() * (probes / 4) * 4) as u64;
    let (ns_ref4, sum_ref4) = time_ns_per_op(reps, search4_ops, |seed| {
        let mut acc = seed as usize;
        for (a, qs) in arrays.iter().zip(&quad_sets) {
            for q in qs {
                for &v in q {
                    acc += count_lt(a, v);
                }
            }
        }
        acc as f64
    });
    push("search4", "scalar_x4", ns_ref4, search4_ops, sum_ref4);
    let (ns_opt4, sum_opt4) = time_ns_per_op(reps, search4_ops, |seed| {
        let mut acc = seed as usize;
        for (a, qs) in arrays.iter().zip(&quad_sets) {
            for q in qs {
                let [r0, r1, r2, r3] = count_lt4(a, *q);
                acc += r0 + r1 + r2 + r3;
            }
        }
        acc as f64
    });
    assert_eq!(sum_ref4, sum_opt4, "count_lt4 diverged from scalar lanes");
    push("search4", "count_lt4", ns_opt4, search4_ops, sum_opt4);

    // --- range: CDF + branchless edges vs full bucket scan --------------
    let span = |lo: i64, hi: i64| (hi as i128 - lo as i128 + 1) as f64;
    let scan_range_rows = |h: &Histogram, lo: i64, hi: i64| -> f64 {
        let mut rows = 0.0;
        for b in h.buckets() {
            let (o_lo, o_hi) = (b.lo.max(lo), b.hi.min(hi));
            if o_lo <= o_hi {
                rows += b.freq * (span(o_lo, o_hi) / span(b.lo, b.hi));
            }
        }
        rows
    };
    let range_ops = (pool.len() * probes) as u64;
    let (ns_scan, sum_scan) = time_ns_per_op(reps, range_ops, |seed| {
        let mut acc = seed;
        for (h, rs) in pool.iter().zip(&range_sets) {
            for &(lo, hi) in rs {
                acc += scan_range_rows(h, lo, hi);
            }
        }
        acc
    });
    push("range", "scan_reference", ns_scan, range_ops, sum_scan);
    let (ns_cdf, sum_cdf) = time_ns_per_op(reps, range_ops, |seed| {
        let mut acc = seed;
        for (h, rs) in pool.iter().zip(&range_sets) {
            for &(lo, hi) in rs {
                acc += h.range_rows(lo, hi);
            }
        }
        acc
    });
    // The CDF kernel may differ from the scan by prefix-subtraction
    // rounding only (documented on `range_rows`).
    let rel = (sum_cdf - sum_scan).abs() / sum_scan.abs().max(1.0);
    assert!(
        rel < 1e-9,
        "range kernels disagree beyond rounding: rel={rel:e}"
    );
    push("range", "cdf_branchless", ns_cdf, range_ops, sum_cdf);

    // --- eq: covering-bucket search vs full bucket scan -----------------
    let scan_eq_rows = |h: &Histogram, v: i64| -> f64 {
        for b in h.buckets() {
            if b.lo <= v && v <= b.hi {
                return if b.distinct > 0.0 {
                    b.freq / b.distinct.max(1.0)
                } else {
                    0.0
                };
            }
        }
        0.0
    };
    let eq_ops = (pool.len() * probes) as u64;
    let (ns_eqscan, sum_eqscan) = time_ns_per_op(reps, eq_ops, |seed| {
        let mut acc = seed;
        for (h, pv) in pool.iter().zip(&probe_sets) {
            for &v in pv {
                acc += scan_eq_rows(h, v);
            }
        }
        acc
    });
    push("eq", "scan_reference", ns_eqscan, eq_ops, sum_eqscan);
    let (ns_eq, sum_eq) = time_ns_per_op(reps, eq_ops, |seed| {
        let mut acc = seed;
        for (h, pv) in pool.iter().zip(&probe_sets) {
            for &v in pv {
                acc += h.eq_rows(v);
            }
        }
        acc
    });
    assert_eq!(
        sum_eqscan.to_bits(),
        sum_eq.to_bits(),
        "eq kernel diverged from bucket scan"
    );
    push("eq", "binary_search", ns_eq, eq_ops, sum_eq);

    // --- join: merge-scan vs boundary-set reference ---------------------
    let join_pairs: Vec<(&Histogram, &Histogram)> = (0..pool.len())
        .map(|i| (&pool[i], &pool[(i * 7 + 3) % pool.len()]))
        .collect();
    let join_ops = join_pairs.len() as u64;
    let (ns_jref, sum_jref) = time_ns_per_op(reps, join_ops, |seed| {
        let mut acc = seed;
        for &(a, b) in &join_pairs {
            let r = a.join_reference(b);
            acc += r.selectivity + r.histogram.total_rows();
        }
        acc
    });
    push("join", "reference", ns_jref, join_ops, sum_jref);
    let (ns_join, sum_join) = time_ns_per_op(reps, join_ops, |seed| {
        let mut acc = seed;
        for &(a, b) in &join_pairs {
            let r = a.join(b);
            acc += r.selectivity + r.histogram.total_rows();
        }
        acc
    });
    // Merge-scan is a drop-in replacement: identical cut sequence and
    // arithmetic, so the checksum must match bit for bit.
    assert_eq!(
        sum_jref.to_bits(),
        sum_join.to_bits(),
        "merge-scan join diverged from reference"
    );
    push("join", "merge_scan", ns_join, join_ops, sum_join);

    println!("kernels_bench — histogram kernel microbenchmarks\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.clone(),
                r.variant.clone(),
                format!("{:.2}", r.ns_per_op),
                r.ops.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["kernel", "variant", "ns/op", "ops"], &table)
    );

    match write_json("kernels", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. **Histogram type** — the paper builds SITs as maxDiff histograms;
//!    how much accuracy do equi-depth / equi-width lose on skewed data?
//! 2. **Bucket budget** — the paper caps SITs at 200 buckets; accuracy vs
//!    20 / 50 / 200 buckets.
//! 3. **Error-function choice** — nInd vs Diff at fixed statistics.
//! 4. **§3.4 SIT-driven pruning** — accuracy preserved while the explored
//!    space (peel-memo entries / view-matching calls) shrinks.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin ablation [-- --queries 30]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::run::eval_workload;
use sqe_bench::{Args, Setup, SetupConfig, Technique};
use sqe_core::{build_pool_with, ErrorMode, PoolSpec, SelectivityEstimator, SitOptions};
use sqe_engine::CardinalityOracle;
use sqe_histogram::BuilderKind;

#[derive(Serialize)]
struct AblationRow {
    dimension: String,
    setting: String,
    avg_abs_error: f64,
}

fn main() {
    let args = Args::parse();
    let mut config = SetupConfig::from_args(&args);
    if config.queries == SetupConfig::default().queries {
        config.queries = 30;
    }
    let setup = Setup::new(config);
    let joins: usize = args.get("joins", 5);
    let db = &setup.snowflake.db;
    let workload = setup.workload(joins);
    let mut oracle = CardinalityOracle::new(db);
    let mut rows: Vec<AblationRow> = Vec::new();

    // --- 1 & 2: histogram type × bucket budget --------------------------
    eprintln!("histogram-type / bucket-budget sweep ...");
    for kind in [
        BuilderKind::MaxDiff,
        BuilderKind::EquiDepth,
        BuilderKind::EquiWidth,
        BuilderKind::Sampled,
        BuilderKind::Wavelet,
    ] {
        for buckets in [20usize, 50, 200] {
            let pool =
                build_pool_with(db, &workload, PoolSpec::ji(2), SitOptions { kind, buckets })
                    .expect("pool builds");
            let (err, _) = eval_workload(
                db,
                &mut oracle,
                &workload,
                &pool,
                Technique::Gs(ErrorMode::Diff),
            );
            rows.push(AblationRow {
                dimension: "histogram".into(),
                setting: format!("{} / {buckets} buckets", kind.label()),
                avg_abs_error: err,
            });
            eprintln!(
                "  {:10} {buckets:>4} buckets: {}",
                kind.label(),
                fmt_num(err)
            );
        }
    }

    // --- 3: error function at fixed statistics --------------------------
    eprintln!("error-function ablation ...");
    let pool = build_pool_with(db, &workload, PoolSpec::ji(2), SitOptions::default())
        .expect("pool builds");
    for mode in [ErrorMode::NInd, ErrorMode::Diff, ErrorMode::Opt] {
        let (err, _) = eval_workload(db, &mut oracle, &workload, &pool, Technique::Gs(mode));
        rows.push(AblationRow {
            dimension: "error-fn".into(),
            setting: mode.label().into(),
            avg_abs_error: err,
        });
        eprintln!("  {:8}: {}", mode.label(), fmt_num(err));
    }

    // --- 4: §3.4 SIT-driven pruning --------------------------------------
    // The paper frames pruning for a *small* SIT set ("if the number of
    // available SITs is small, those SITs can drive the search"), so use
    // base histograms plus the five highest-diff SITs.
    eprintln!("SIT-driven pruning ablation (small catalog) ...");
    let mut small = sqe_core::NoSitEstimator::from_catalog(&pool)
        .catalog()
        .clone();
    let mut ranked: Vec<&sqe_core::Sit> = pool
        .iter()
        .map(|(_, s)| s)
        .filter(|s| !s.is_base())
        .collect();
    ranked.sort_by(|a, b| b.diff.total_cmp(&a.diff));
    for sit in ranked.into_iter().take(5) {
        small.add(sit.clone());
    }
    let pool = small;
    let mut full_err = 0.0f64;
    let mut pruned_err = 0.0f64;
    let (mut full_peels, mut pruned_peels) = (0usize, 0usize);
    for q in &workload {
        let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap_or(0) as f64;
        let mut full = SelectivityEstimator::new(db, q, &pool, ErrorMode::Diff);
        let all = full.context().all();
        full_err += (full.cardinality(all) - truth).abs();
        full_peels += full.stats().peel_entries;
        let mut pruned =
            SelectivityEstimator::new(db, q, &pool, ErrorMode::Diff).with_sit_driven_pruning();
        pruned_err += (pruned.cardinality(all) - truth).abs();
        pruned_peels += pruned.stats().peel_entries;
    }
    let n = workload.len() as f64;
    rows.push(AblationRow {
        dimension: "pruning".into(),
        setting: format!("full search ({} peels/query)", full_peels / workload.len()),
        avg_abs_error: full_err / n,
    });
    eprintln!("  full: {} peels/query", full_peels / workload.len());
    rows.push(AblationRow {
        dimension: "pruning".into(),
        setting: format!("SIT-driven ({} peels/query)", pruned_peels / workload.len()),
        avg_abs_error: pruned_err / n,
    });
    eprintln!("  pruned: {} peels/query", pruned_peels / workload.len());

    println!("\nAblation — {}-way joins, J2 pool, GS estimator\n", joins);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dimension.clone(),
                r.setting.clone(),
                fmt_num(r.avg_abs_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dimension", "setting", "avg abs error"], &table)
    );
    println!("expected: maxdiff ≥ equi-depth ≫ equi-width on skewed data; more buckets help;");
    println!("Diff ≈ Opt < nInd; pruning preserves accuracy with far fewer peels");

    match write_json("ablation", &rows) {
        Ok(p) => println!("\nresults written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

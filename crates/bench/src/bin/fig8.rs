//! Figure 8 (a, b, c) — execution time of `getSelectivity` (GS-Diff) per
//! query, split into *decomposition analysis* and *histogram manipulation*,
//! across SIT pools, with `noSit` as the baseline.
//!
//! Expected shape: a few milliseconds per fully-estimated query, growing
//! gracefully with pool size; the decomposition-analysis component
//! dominates.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin fig8 [-- --queries 100]
//! ```

use std::time::Duration;

use serde::Serialize;
use sqe_bench::report::{render_table, write_json};
use sqe_bench::run::eval_workload;
use sqe_bench::{Args, Setup, SetupConfig, Technique};
use sqe_core::ErrorMode;
use sqe_engine::CardinalityOracle;

#[derive(Serialize)]
struct Row {
    pool: String,
    sits: usize,
    decomposition_ms: f64,
    histogram_ms: f64,
    nosit_total_ms: f64,
}

#[derive(Serialize)]
struct Panel {
    joins: usize,
    rows: Vec<Row>,
}

fn avg_ms(total: Duration, n: usize) -> f64 {
    total.as_secs_f64() * 1e3 / n.max(1) as f64
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let max_pool: usize = args.get("max-pool", 7);
    let db = &setup.snowflake.db;

    let mut panels = Vec::new();
    for (panel_idx, joins) in [3usize, 5, 7].into_iter().enumerate() {
        eprintln!(
            "=== Figure 8({}) — {joins}-way joins ===",
            (b'a' + panel_idx as u8) as char
        );
        let workload = setup.workload(joins);
        let mut oracle = CardinalityOracle::new(db);
        let mut rows = Vec::new();
        for i in 0..=max_pool.min(joins) {
            let pool = setup.pool(&workload, i);
            let (_, evals) = eval_workload(
                db,
                &mut oracle,
                &workload,
                &pool,
                Technique::Gs(ErrorMode::Diff),
            );
            let wall: Duration = evals.iter().map(|e| e.wall).sum();
            let hist: Duration = evals.iter().map(|e| e.histogram_time).sum();
            let (_, nosit_evals) =
                eval_workload(db, &mut oracle, &workload, &pool, Technique::NoSit);
            let nosit_wall: Duration = nosit_evals.iter().map(|e| e.wall).sum();
            let n = workload.len();
            rows.push(Row {
                pool: format!("J{i}"),
                sits: pool.len(),
                decomposition_ms: avg_ms(wall.saturating_sub(hist), n),
                histogram_ms: avg_ms(hist, n),
                nosit_total_ms: avg_ms(nosit_wall, n),
            });
            eprintln!(
                "  J{i}: GS-Diff {:.2} ms (decomp) + {:.2} ms (hist); noSit {:.2} ms",
                rows.last().unwrap().decomposition_ms,
                rows.last().unwrap().histogram_ms,
                rows.last().unwrap().nosit_total_ms
            );
        }
        panels.push(Panel { joins, rows });
    }

    for (panel_idx, panel) in panels.iter().enumerate() {
        println!(
            "\nFigure 8({}) — {}-way joins: avg per-query estimation time (ms, all sub-queries)",
            (b'a' + panel_idx as u8) as char,
            panel.joins
        );
        let table: Vec<Vec<String>> = panel
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.pool.clone(),
                    r.sits.to_string(),
                    format!("{:.3}", r.decomposition_ms),
                    format!("{:.3}", r.histogram_ms),
                    format!("{:.3}", r.decomposition_ms + r.histogram_ms),
                    format!("{:.3}", r.nosit_total_ms),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["pool", "#SITs", "decomp", "histogram", "GS total", "noSit"],
                &table
            )
        );
    }
    println!("\npaper shape: a few ms per query, scaling gracefully with pool size");

    match write_json("fig8", &panels) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

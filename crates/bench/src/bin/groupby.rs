//! Group-By cardinality estimation — the extension the paper defers to \[3\].
//!
//! For a workload of join queries, estimate the number of groups of
//! `Γ_a(σ_P)` for every filter attribute `a` of each query, with base
//! statistics vs a `J2` SIT pool, against the exact group count.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin groupby [-- --queries 30]
//! ```

use serde::Serialize;
use sqe_bench::report::{fmt_num, render_table, write_json};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_core::{true_group_count, ErrorMode, NoSitEstimator, SelectivityEstimator};

#[derive(Serialize)]
struct Row {
    joins: usize,
    cases: usize,
    nosit_q_error: f64,
    sit_q_error: f64,
}

/// Symmetric ratio error (q-error): max(est/true, true/est) ≥ 1.
fn q_error(est: f64, truth: f64) -> f64 {
    let (e, t) = (est.max(1.0), truth.max(1.0));
    (e / t).max(t / e)
}

fn main() {
    let args = Args::parse();
    let mut config = SetupConfig::from_args(&args);
    if config.queries == SetupConfig::default().queries {
        config.queries = 30;
    }
    let setup = Setup::new(config);
    let db = &setup.snowflake.db;

    let mut rows = Vec::new();
    for joins in [3usize, 5] {
        eprintln!("=== {joins}-way joins ===");
        let workload = setup.workload(joins);
        let pool = setup.pool(&workload, 2);
        let nosit = NoSitEstimator::from_catalog(&pool);
        let (mut qe_base, mut qe_sit) = (0.0f64, 0.0f64);
        let mut cases = 0usize;
        for q in &workload {
            // Group by each filter attribute of the query.
            for pred in q.filters() {
                let attr = pred.columns().iter().next().expect("filter has a column");
                // Grouping query: the joins only (drop the filters so the
                // group count is about join survivors).
                let joins_only: Vec<_> = q.joins().copied().collect();
                let gq = sqe_engine::SpjQuery::new(q.tables.clone(), joins_only.clone())
                    .expect("join-only query");
                let truth = match true_group_count(db, &gq.tables, &gq.predicates, attr) {
                    Ok(t) => t as f64,
                    Err(_) => continue,
                };
                if truth == 0.0 {
                    continue;
                }
                let mut base = nosit.estimator(db, &gq);
                let all = base.context().all();
                let est_base = base.group_count(attr, all);
                let mut sit = SelectivityEstimator::new(db, &gq, &pool, ErrorMode::Diff);
                let est_sit = sit.group_count(attr, all);
                qe_base += q_error(est_base, truth);
                qe_sit += q_error(est_sit, truth);
                cases += 1;
            }
        }
        rows.push(Row {
            joins,
            cases,
            nosit_q_error: qe_base / cases.max(1) as f64,
            sit_q_error: qe_sit / cases.max(1) as f64,
        });
        eprintln!(
            "  {} cases: noSit q-error {:.2}, SIT q-error {:.2}",
            cases,
            rows.last().unwrap().nosit_q_error,
            rows.last().unwrap().sit_q_error
        );
    }

    println!("\nGroup-By estimation — mean q-error of group counts (1.0 = exact)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}-way", r.joins),
                r.cases.to_string(),
                fmt_num(r.nosit_q_error),
                fmt_num(r.sit_q_error),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["workload", "cases", "noSit", "with SITs"], &table)
    );
    println!("\nSITs tighten group counts because the distinct-value pool is taken from");
    println!("the distribution over the join expression, not extrapolated from base tables");

    match write_json("groupby", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

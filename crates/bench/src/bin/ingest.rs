//! Live-catalog ingest soak: a seeded 10k-op mutation stream through a
//! [`LiveCatalog`] publishing epoch-tagged partial snapshots into an
//! [`EstimationService`].
//!
//! The soak asserts the delta-ingest subsystem's operational contract and
//! exits non-zero on any violation (this is the CI `ingest-smoke` job):
//!
//! * every histogram stays within the configured staleness bound after
//!   every batch;
//! * the drifting fact measure triggers at least one drift rebuild;
//! * only SITs over mutated tables are ever refreshed;
//! * rebuild churn stays bounded — most maintenance is merges/deferrals,
//!   not rebuilds;
//! * partial installs invalidate exactly the cache entries whose keys
//!   cover mutated tables: probe queries over untouched dimensions keep
//!   hitting the whole-query cache across installs;
//! * after draining the stream and forcing a refresh, estimates are
//!   bit-identical to a cold catalog built from the final database state.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin ingest [-- --ops 10000 --batch 50]
//! ```
//!
//! Results land in `results/ingest.json`.

use std::sync::Arc;

use sqe_bench::report::{render_table, write_json};
use sqe_bench::Args;
use sqe_core::{
    build_pool, DeltaConfig, ErrorMode, LiveCatalog, PoolSpec, SelectivityEstimator, Sit,
    SitCatalog,
};
use sqe_datagen::{
    database_fingerprint, generate_mutations, generate_workload, MutationConfig, Snowflake,
    SnowflakeConfig, WorkloadConfig,
};
use sqe_engine::{CmpOp, ColRef, Database, Predicate, SpjQuery, TableId};
use sqe_service::{EstimationService, ServiceConfig};

/// What the soak measured, serialized as `results/ingest.json`.
#[derive(Debug, serde::Serialize)]
struct IngestRunReport {
    ops: usize,
    batches: usize,
    initial_db_fingerprint: u64,
    stream_fingerprint: u64,
    final_db_fingerprint: u64,
    catalog_sits: usize,
    merges: usize,
    drift_rebuilds: usize,
    staleness_rebuilds: usize,
    deferrals: usize,
    max_staleness_observed: f64,
    staleness_bound: f64,
    partial_installs: u64,
    cache_carried: u64,
    cache_dropped: u64,
    untouched_probe_hits: usize,
    untouched_probe_total: usize,
    converged_bit_identical: bool,
}

/// True when `sit` reads any of `touched` (its attribute's table or any
/// table of its conditioning expression).
fn sit_reads(sit: &Sit, touched: &[TableId]) -> bool {
    touched.contains(&sit.attr.table)
        || sit
            .cond
            .iter()
            .any(|p| p.tables().iter().any(|t| touched.contains(&t)))
}

/// A single-filter probe query over one dimension column, thresholded at
/// the column's midpoint.
fn probe(db: &Database, col: ColRef) -> SpjQuery {
    let (lo, hi) = db
        .column(col)
        .expect("probe column exists")
        .min_max()
        .expect("probe column non-empty");
    let mid = lo + (hi - lo) / 2;
    SpjQuery::from_predicates(vec![Predicate::filter(col, CmpOp::Le, mid)])
        .expect("single-filter probe is a valid query")
}

fn main() {
    let args = Args::parse();
    let ops: usize = args.get("ops", 10_000);
    let batch_size: usize = args.get("batch", 50);

    eprintln!("generating snowflake + workload ...");
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.0,
        theta: 1.0,
        dangling_frac: 0.10,
        correlation: 1.0,
        seed: 0x1A6E_5701,
        min_rows: 150,
    });
    let initial_fp = database_fingerprint(&sf.db);

    let stream = generate_mutations(
        &sf.db,
        MutationConfig {
            ops,
            batch_size,
            seed: 0x1A6E_5702,
            drift: 1.5,
        },
    );

    // Workload: joins + filters over the snowflake, plus one query pinning
    // the stream's drifting measure column (so the pool holds a base SIT
    // that can drift-rebuild) and one probe per dimension (cache carry-over
    // checks below).
    let mut workload = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 12,
            joins: 3,
            filters: 2,
            target_selectivity: 0.05,
            seed: 0x1A6E_5703,
        },
    );
    workload.push(probe(&sf.db, stream.measure));
    let probes: Vec<SpjQuery> = [
        "customer.age",
        "nation.gdp",
        "product.price",
        "category.margin",
        "supplier.quality",
        "store.size",
        "region.climate",
    ]
    .iter()
    .map(|q| {
        let (t, c) = q.split_once('.').expect("table.column");
        let (_, id) = sf.db.table_by_name(t).expect("dimension exists");
        let schema = sf.db.schema(id).expect("schema");
        let col = ColRef::new(id, schema.column_index(c).expect("column exists"));
        probe(&sf.db, col)
    })
    .collect();
    workload.extend(probes.iter().cloned());

    eprintln!("building J2 pool ...");
    let catalog = build_pool(&sf.db, &workload, PoolSpec::ji(2)).expect("pool build");
    let config = DeltaConfig {
        // Looser staleness + tighter drift than the defaults so the
        // drifting measure hits its drift threshold before the staleness
        // backstop does — the soak must see both rebuild triggers.
        max_staleness: 0.15,
        drift_threshold: 0.02,
        ..DeltaConfig::default()
    };
    let mut live = LiveCatalog::new(sf.db.clone(), catalog.clone(), config);
    let svc = EstimationService::new(
        Arc::new(sf.db.clone()),
        catalog.clone(),
        ServiceConfig::default(),
    );

    let mut failures: Vec<String> = Vec::new();
    let check = |cond: bool, msg: String, failures: &mut Vec<String>| {
        if !cond {
            failures.push(msg);
        }
    };

    eprintln!(
        "ingesting {} ops in {} batches over {} SITs ...",
        ops,
        stream.batches.len(),
        catalog.len()
    );
    let mut merges = 0usize;
    let mut drift_rebuilds = 0usize;
    let mut staleness_rebuilds = 0usize;
    let mut deferrals = 0usize;
    let mut max_staleness = 0.0f64;
    let mut untouched_hits = 0usize;
    let mut untouched_total = 0usize;
    // Warm every probe so round 1's carry-over is observable.
    for q in &probes {
        svc.estimate(q);
    }
    for batch in &stream.batches {
        let report = live.ingest(batch).expect("generated batch ingests");
        merges += report.merges;
        drift_rebuilds += report.drift_rebuilds;
        staleness_rebuilds += report.staleness_rebuilds;
        deferrals += report.sits_deferred;
        let stale_now = live.max_staleness_observed();
        max_staleness = max_staleness.max(stale_now);
        check(
            stale_now <= config.max_staleness + 1e-12,
            format!(
                "batch {}: staleness {stale_now:.4} exceeds bound {}",
                batch.seq, config.max_staleness
            ),
            &mut failures,
        );
        for &id in &report.sits_refreshed {
            check(
                sit_reads(live.catalog().get(id), &report.tables_touched),
                format!(
                    "batch {}: SIT {id:?} refreshed without reading a mutated table",
                    batch.seq
                ),
                &mut failures,
            );
        }

        svc.partial_install(
            Arc::new(live.db().clone()),
            live.catalog().clone(),
            None,
            &report,
        );
        // Cache carry-over contract: a probe over tables this batch did
        // not mutate must still hit the whole-query cache; one over a
        // mutated table must recompute.
        for q in &probes {
            let table = q.tables[0];
            let touched = report.tables_touched.contains(&table);
            let e = svc.estimate(q);
            check(
                e.cached != touched,
                format!(
                    "batch {}: probe over table {table:?} cached={} but touched={touched}",
                    batch.seq, e.cached
                ),
                &mut failures,
            );
            if !touched {
                untouched_hits += e.cached as usize;
                untouched_total += 1;
            }
        }
    }

    check(
        drift_rebuilds >= 1,
        format!("no drift rebuild fired over {ops} drifting ops"),
        &mut failures,
    );
    check(
        untouched_total > 0 && untouched_hits == untouched_total,
        format!("untouched-probe hit rate {untouched_hits}/{untouched_total}, expected 100%"),
        &mut failures,
    );
    let total_rebuilds = drift_rebuilds + staleness_rebuilds;
    check(
        total_rebuilds * 2 < stream.batches.len() * catalog.len(),
        format!(
            "rebuild churn unbounded: {total_rebuilds} rebuilds over {} batch-SIT slots",
            stream.batches.len() * catalog.len()
        ),
        &mut failures,
    );
    check(
        merges > 0 && deferrals > 0,
        format!("maintenance never merged ({merges}) or deferred ({deferrals})"),
        &mut failures,
    );
    let stats = svc.stats();
    check(
        stats.ingest.partial_installs == stream.batches.len() as u64,
        format!(
            "{} partial installs recorded for {} batches",
            stats.ingest.partial_installs,
            stream.batches.len()
        ),
        &mut failures,
    );
    check(
        svc.snapshot().epoch() == stream.batches.len() as u64,
        format!(
            "epoch {} after {} installs",
            svc.snapshot().epoch(),
            stream.batches.len()
        ),
        &mut failures,
    );

    // Drain convergence: the live database must be byte-identical to the
    // generator's final state, and after a forced refresh every estimate
    // must be bit-identical to a cold catalog built from that state.
    let final_fp = database_fingerprint(live.db());
    check(
        final_fp == database_fingerprint(&stream.final_db),
        "drained database diverged from the generator's final state".to_string(),
        &mut failures,
    );
    live.refresh_all().expect("refresh");
    let cold = build_pool(live.db(), &workload, PoolSpec::ji(2)).expect("cold pool");
    let converged = workload.iter().all(|q| {
        let warm = estimate(live.db(), live.catalog(), q);
        let coldest = estimate(live.db(), &cold, q);
        warm.to_bits() == coldest.to_bits()
    });
    check(
        converged,
        "refreshed catalog is not bit-identical to a cold build".to_string(),
        &mut failures,
    );

    let run = IngestRunReport {
        ops,
        batches: stream.batches.len(),
        initial_db_fingerprint: initial_fp,
        stream_fingerprint: stream.fingerprint,
        final_db_fingerprint: final_fp,
        catalog_sits: catalog.len(),
        merges,
        drift_rebuilds,
        staleness_rebuilds,
        deferrals,
        max_staleness_observed: max_staleness,
        staleness_bound: config.max_staleness,
        partial_installs: stats.ingest.partial_installs,
        cache_carried: stats.ingest.cache_carried,
        cache_dropped: stats.ingest.cache_dropped,
        untouched_probe_hits: untouched_hits,
        untouched_probe_total: untouched_total,
        converged_bit_identical: converged,
    };

    println!("Live-catalog ingest soak\n");
    println!(
        "{}",
        render_table(
            &["metric", "value"],
            &[
                vec!["ops".into(), run.ops.to_string()],
                vec!["batches".into(), run.batches.to_string()],
                vec!["SITs".into(), run.catalog_sits.to_string()],
                vec!["merges".into(), run.merges.to_string()],
                vec!["drift rebuilds".into(), run.drift_rebuilds.to_string()],
                vec![
                    "staleness rebuilds".into(),
                    run.staleness_rebuilds.to_string()
                ],
                vec!["deferrals".into(), run.deferrals.to_string()],
                vec![
                    "max staleness".into(),
                    format!("{:.4}", run.max_staleness_observed)
                ],
                vec!["cache carried".into(), run.cache_carried.to_string()],
                vec!["cache dropped".into(), run.cache_dropped.to_string()],
                vec![
                    "untouched-probe hits".into(),
                    format!("{}/{}", run.untouched_probe_hits, run.untouched_probe_total)
                ],
                vec!["converged".into(), run.converged_bit_identical.to_string()],
            ],
        )
    );
    println!("{}", svc.stats());

    match write_json("ingest", &run) {
        Ok(p) => println!("\nreport written to {}", p.display()),
        Err(e) => {
            eprintln!("could not write results/ingest.json: {e}");
            std::process::exit(1);
        }
    }

    if !failures.is_empty() {
        eprintln!("\ningest soak FAIL ({} violation(s)):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("\ningest soak PASS");
}

fn estimate(db: &Database, catalog: &SitCatalog, q: &SpjQuery) -> f64 {
    let mut est = SelectivityEstimator::new(db, q, catalog, ErrorMode::Diff);
    let all = est.context().all();
    est.get_selectivity(all).0
}

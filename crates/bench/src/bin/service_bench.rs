//! Throughput driver for the `sqe-service` estimation service: concurrent
//! threads × query stream, estimates/sec with a cold vs. warm cross-query
//! cache, plus the service's own metrics snapshot.
//!
//! Cold: every thread estimates a disjoint slice of the workload against a
//! freshly installed snapshot (nothing cached; threads still share link /
//! join-product work through the sharded cache as it fills). Warm: every
//! thread then replays the *full* workload `reps` times against the now-hot
//! snapshot, modeling concurrent sessions issuing recurring query shapes.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin service_bench \
//!     [-- --queries 60 --joins 4 --pool 2 --threads 1,2,4,8 --reps 3]
//! ```

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use sqe_bench::report::{render_table, write_json};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_engine::SpjQuery;
use sqe_service::{EstimationService, ServiceConfig};

#[derive(Serialize)]
struct Row {
    threads: usize,
    cold_eps: f64,
    warm_eps: f64,
    warm_speedup_vs_1: f64,
}

/// Estimates/sec for `threads` workers each running `per_thread` streams.
fn run(svc: &EstimationService, streams: &[Vec<&SpjQuery>], reps: usize) -> f64 {
    let total: usize = streams.iter().map(|s| s.len() * reps).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            scope.spawn(move || {
                for _ in 0..reps {
                    for q in stream {
                        std::hint::black_box(svc.estimate(q));
                    }
                }
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let joins: usize = args.get("joins", 4);
    let pool_i: usize = args.get("pool", 2);
    let reps: usize = args.get("reps", 3);
    let thread_counts: Vec<usize> = args
        .get_str("threads", "1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    eprintln!("generating workload ({joins}-way joins) and J{pool_i} pool ...");
    let workload = setup.workload(joins);
    let pool = setup.pool(&workload, pool_i);
    let db = Arc::new(setup.snowflake.db);
    let svc = EstimationService::new(Arc::clone(&db), pool.clone(), ServiceConfig::default());

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        // Fresh snapshot -> cold cache. Threads split the workload.
        svc.install(pool.clone(), None);
        let cold_streams: Vec<Vec<&SpjQuery>> = (0..threads)
            .map(|t| {
                workload
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, q)| q)
                    .collect()
            })
            .collect();
        let cold_eps = run(&svc, &cold_streams, 1);

        // Same snapshot, now hot: every thread replays the full stream.
        let warm_streams: Vec<Vec<&SpjQuery>> =
            (0..threads).map(|_| workload.iter().collect()).collect();
        let warm_eps = run(&svc, &warm_streams, reps);

        let base = rows.first().map_or(warm_eps, |r: &Row| r.warm_eps);
        rows.push(Row {
            threads,
            cold_eps,
            warm_eps,
            warm_speedup_vs_1: warm_eps / base,
        });
    }

    println!("service_bench — estimates/sec, cold vs warm cross-query cache\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.0}", r.cold_eps),
                format!("{:.0}", r.warm_eps),
                format!("{:.2}x", r.warm_speedup_vs_1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["threads", "cold est/s", "warm est/s", "warm vs 1-thread"],
            &table
        )
    );

    println!("\nservice metrics after the final round:");
    println!("{}", svc.stats());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nhost parallelism: {cores} core(s) available to this process");

    match write_json("service_bench", &rows) {
        Ok(p) => println!("results written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

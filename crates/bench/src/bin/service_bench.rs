//! Throughput driver for the `sqe-service` estimation service: concurrent
//! threads × query stream, estimates/sec with a cold vs. warm cross-query
//! cache, plus the service's own metrics snapshot.
//!
//! Cold: every thread estimates a disjoint slice of the workload against a
//! freshly installed snapshot (nothing cached; threads still share link /
//! join-product work through the sharded cache as it fills). Warm: every
//! thread then replays the *full* workload `reps` times against the now-hot
//! snapshot, modeling concurrent sessions issuing recurring query shapes.
//!
//! A final **batch phase** drives `estimate_batch` over the full workload
//! with a parallel worker pool and asserts every estimate bit-identical to
//! the sequential batch path (the check the service's design guarantees —
//! see `estimate_batch`).
//!
//! ```text
//! cargo run --release -p sqe-bench --bin service_bench \
//!     [-- --queries 60 --joins 4 --pool 2 --threads 1,2,4,8 --reps 3]
//! ```

use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;
use sqe_bench::report::{render_table, round_us, write_json};
use sqe_bench::{Args, Setup, SetupConfig};
use sqe_engine::SpjQuery;
use sqe_service::{Budget, EstimationService, Quality, ServiceConfig};

#[derive(Serialize)]
struct Row {
    threads: usize,
    cold_eps: f64,
    warm_eps: f64,
    warm_speedup_vs_1: f64,
}

#[derive(Serialize)]
struct BatchRow {
    threads: usize,
    cold_batch_us: f64,
    /// Always true when the row exists — the bench aborts on divergence.
    bit_identical_to_sequential: bool,
}

#[derive(Serialize)]
struct DegradedRow {
    deadline: String,
    p50_us: f64,
    p99_us: f64,
    full: u64,
    beam: u64,
    pruned: u64,
    greedy: u64,
    independence: u64,
}

#[derive(Serialize)]
struct Report {
    concurrency: Vec<Row>,
    batch: Vec<BatchRow>,
    degraded: Vec<DegradedRow>,
}

/// Estimates/sec for `threads` workers each running `per_thread` streams.
fn run(svc: &EstimationService, streams: &[Vec<&SpjQuery>], reps: usize) -> f64 {
    let total: usize = streams.iter().map(|s| s.len() * reps).sum();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in streams {
            scope.spawn(move || {
                for _ in 0..reps {
                    for q in stream {
                        std::hint::black_box(svc.estimate(q));
                    }
                }
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args = Args::parse();
    let setup = Setup::new(SetupConfig::from_args(&args));
    let joins: usize = args.get("joins", 4);
    let pool_i: usize = args.get("pool", 2);
    let reps: usize = args.get("reps", 3);
    let thread_counts: Vec<usize> = args
        .get_str("threads", "1,2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    eprintln!("generating workload ({joins}-way joins) and J{pool_i} pool ...");
    let workload = setup.workload(joins);
    let pool = setup.pool(&workload, pool_i);
    let db = Arc::new(setup.snowflake.db);
    let svc = EstimationService::new(Arc::clone(&db), pool.clone(), ServiceConfig::default());

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        // Fresh snapshot -> cold cache. Threads split the workload.
        svc.install(pool.clone(), None);
        let cold_streams: Vec<Vec<&SpjQuery>> = (0..threads)
            .map(|t| {
                workload
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, q)| q)
                    .collect()
            })
            .collect();
        let cold_eps = run(&svc, &cold_streams, 1);

        // Same snapshot, now hot: every thread replays the full stream.
        let warm_streams: Vec<Vec<&SpjQuery>> =
            (0..threads).map(|_| workload.iter().collect()).collect();
        let warm_eps = run(&svc, &warm_streams, reps);

        let base = rows.first().map_or(warm_eps, |r: &Row| r.warm_eps);
        rows.push(Row {
            threads,
            cold_eps,
            warm_eps,
            warm_speedup_vs_1: warm_eps / base,
        });
    }

    println!("service_bench — estimates/sec, cold vs warm cross-query cache\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.0}", r.cold_eps),
                format!("{:.0}", r.warm_eps),
                format!("{:.2}x", r.warm_speedup_vs_1),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["threads", "cold est/s", "warm est/s", "warm vs 1-thread"],
            &table
        )
    );

    println!("\nservice metrics after the final round:");
    println!("{}", svc.stats());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nhost parallelism: {cores} core(s) available to this process");

    // Batch phase: parallel estimate_batch vs the sequential path, cold
    // snapshots on both sides, asserting the service's bit-identity
    // guarantee on every deterministic Estimate field.
    println!("\nbatch phase — parallel estimate_batch vs sequential, cold cache");
    let batch_svc = |threads: usize| {
        EstimationService::new(
            Arc::clone(&db),
            pool.clone(),
            ServiceConfig {
                batch_threads: Some(NonZeroUsize::new(threads).expect("non-zero thread count")),
                ..ServiceConfig::default()
            },
        )
    };
    let reference = batch_svc(1).estimate_batch(&workload);
    let mut batch_rows: Vec<BatchRow> = Vec::new();
    for &threads in &thread_counts {
        let svc = batch_svc(threads);
        let start = Instant::now();
        let got = svc.estimate_batch(&workload);
        let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        assert_eq!(got.len(), reference.len());
        for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g.selectivity.to_bits(),
                r.selectivity.to_bits(),
                "batch[{i}] selectivity diverged at {threads} threads"
            );
            assert_eq!(
                g.error.to_bits(),
                r.error.to_bits(),
                "batch[{i}] error diverged at {threads} threads"
            );
            assert_eq!(
                g.cardinality.to_bits(),
                r.cardinality.to_bits(),
                "batch[{i}] cardinality diverged at {threads} threads"
            );
            assert_eq!(g.epoch, r.epoch, "batch[{i}] epoch diverged");
        }
        println!(
            "  {threads} worker(s): {} queries in {:.0} µs — bit-identical to sequential",
            workload.len(),
            elapsed_us
        );
        batch_rows.push(BatchRow {
            threads,
            cold_batch_us: round_us(elapsed_us),
            bit_identical_to_sequential: true,
        });
    }

    // Degraded phase: budgeted estimates at three deadline settings on a
    // cold cache, reporting the latency distribution and which rung of the
    // degradation ladder answered. The `none` row doubles as the
    // no-budget baseline: all answers must come back `full`.
    println!("\ndegraded phase — budgeted estimates per deadline, cold cache");
    let deadlines: [(&str, Option<Duration>); 3] = [
        ("none", None),
        ("5ms", Some(Duration::from_millis(5))),
        ("250us", Some(Duration::from_micros(250))),
    ];
    let mut degraded_rows: Vec<DegradedRow> = Vec::new();
    for (label, deadline) in deadlines {
        let svc = EstimationService::new(Arc::clone(&db), pool.clone(), ServiceConfig::default());
        let budget =
            deadline.map_or_else(Budget::unlimited, |d| Budget::unlimited().with_deadline(d));
        let mut lat_us: Vec<f64> = Vec::with_capacity(workload.len());
        let mut mix = [0u64; 6]; // full / beam / pruned / greedy / independence / bound
        for q in &workload {
            let t = Instant::now();
            let e = svc
                .estimate_with_budget(q, &budget)
                .expect("single-threaded driver never trips admission");
            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            match e.quality {
                Quality::Full => mix[0] += 1,
                Quality::Beam => mix[1] += 1,
                Quality::Pruned => mix[2] += 1,
                Quality::Greedy => mix[3] += 1,
                Quality::Independence => mix[4] += 1,
                Quality::Bound => mix[5] += 1,
            }
        }
        lat_us.sort_by(f64::total_cmp);
        let pct = |p: f64| lat_us[((lat_us.len() - 1) as f64 * p).round() as usize];
        if deadline.is_none() {
            assert_eq!(
                mix[0] as usize,
                workload.len(),
                "no budget must mean every answer is full quality"
            );
        }
        degraded_rows.push(DegradedRow {
            deadline: label.to_string(),
            p50_us: round_us(pct(0.50)),
            p99_us: round_us(pct(0.99)),
            full: mix[0],
            beam: mix[1],
            pruned: mix[2],
            greedy: mix[3],
            independence: mix[4],
        });
    }
    let degraded_table: Vec<Vec<String>> = degraded_rows
        .iter()
        .map(|r| {
            vec![
                r.deadline.clone(),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                r.full.to_string(),
                r.beam.to_string(),
                r.pruned.to_string(),
                r.greedy.to_string(),
                r.independence.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["deadline", "p50 µs", "p99 µs", "full", "beam", "pruned", "greedy", "indep"],
            &degraded_table
        )
    );

    let report = Report {
        concurrency: rows,
        batch: batch_rows,
        degraded: degraded_rows,
    };
    match write_json("service_bench", &report) {
        Ok(p) => println!("\nresults written to {}", p.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
}

//! Multi-tenant server soak: N tenants × sustained mixed estimate/ingest
//! load through the `sqe-server` front door, with one tenant driven to
//! 2× its quota.
//!
//! The soak asserts the front door's operational contract and exits
//! non-zero on any violation (this is the CI `soak-smoke` job):
//!
//! * under 2× overload the hot tenant **degrades instead of failing**:
//!   nonzero non-`full` rungs (the pressure-compressed deadline pushes
//!   its wide queries down the ladder) and nonzero sheds, every shed
//!   carrying a finite, capped `retry_after`;
//! * every other tenant is **isolated**: ≥ 99% of its answers stay at
//!   `full` quality and its p99 latency holds under its deadline-ceiling
//!   SLO throughout the overload;
//! * per-tenant ingest advances per-tenant epochs (observed by that
//!   tenant's answers only);
//! * no accounting leaks: after the load stops, the global admission
//!   pool and every tenant's in-flight pool read zero;
//! * the TCP reactor answers real sockets (a smoke pass over loopback:
//!   health, metrics, one estimate per tenant).
//!
//! The hot tenant's deadline ceiling is *calibrated*, not hardcoded: the
//! soak measures the median full-DP cost `T` of its wide queries on this
//! machine and sets `ceiling = 3 T`, so at pressure ≈ 2 the compressed
//! deadline (`ceiling / 4 = 0.75 T`) reliably binds while an in-quota
//! request keeps 3× slack — the assertion is about the *mechanism*, not
//! about one machine's speed.
//!
//! ```text
//! cargo run --release -p sqe-bench --bin soak [-- --tenants 4 --baseline-secs 3 --overload-secs 8]
//! ```
//!
//! Results land in `results/soak.json`.

use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqe_bench::report::{render_table, write_json};
use sqe_bench::Args;
use sqe_core::{build_pool, DeltaConfig, PoolSpec, Quality};
use sqe_datagen::{
    generate_mutations, generate_workload, MutationConfig, MutationStream, Tpcc, TpccConfig,
    WorkloadConfig,
};
use sqe_engine::{Predicate, SpjQuery};
use sqe_server::{FrontDoor, QuotaConfig, Request, Tenant, TenantConfig};
use sqe_service::ServiceConfig;

/// Wire shape of `POST /v1/<tenant>/estimate` (mirrors the server's
/// request schema; every field is required, `deadline_ms` nullable).
#[derive(serde::Serialize)]
struct WireEstimate {
    tables: Vec<u32>,
    predicates: Vec<Predicate>,
    deadline_ms: Option<u64>,
}

/// One tenant's phase-delta statistics.
#[derive(Debug, Clone, serde::Serialize)]
struct PhaseStats {
    served: u64,
    full_fraction: f64,
    /// Served answers per rung over the phase, worst-to-best.
    rung_mix: Vec<RungShare>,
    sheds: u64,
    shed_retry_ms_max: f64,
    /// Cumulative (run-so-far) latency quantiles at phase end, µs.
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_epoch: u64,
    http_200: u64,
    http_429: u64,
}

#[derive(Debug, Clone, serde::Serialize)]
struct RungShare {
    rung: String,
    served: u64,
}

#[derive(Debug, serde::Serialize)]
struct TenantReport {
    name: String,
    hot: bool,
    rate: f64,
    ceiling_ms: f64,
    baseline: PhaseStats,
    overload: PhaseStats,
}

#[derive(Debug, serde::Serialize)]
struct SoakReport {
    tenants: usize,
    baseline_secs: f64,
    overload_secs: f64,
    calibrated_wide_cost_us: u64,
    global_max_in_flight: usize,
    tenant_reports: Vec<TenantReport>,
    global_in_flight_after: usize,
    tenant_in_flight_after: Vec<usize>,
    tcp_requests: usize,
    tcp_ok: usize,
    violations: Vec<String>,
}

/// Client-side counts for one phase.
#[derive(Debug, Default, Clone, Copy)]
struct ClientCounts {
    http_200: u64,
    http_429: u64,
    http_other: u64,
}

/// Jitters every range predicate's bounds so each request misses the
/// whole-query cache (a fixed workload would be absorbed by it and the
/// soak would measure cache hits, not estimation).
fn jitter(query: &SpjQuery, rng: &mut StdRng) -> Vec<Predicate> {
    query
        .predicates
        .iter()
        .map(|p| match *p {
            Predicate::Range { col, lo, hi } => {
                let shift = rng.gen_range(0..=1_000);
                Predicate::Range {
                    col,
                    lo: lo - shift,
                    hi: hi + rng.gen_range(0..=1_000),
                }
            }
            other => other,
        })
        .collect()
}

/// Drives one tenant at `rate` requests/second for `secs`, mixing one
/// ingest batch every `ingest_every` requests into the estimate stream.
#[allow(clippy::too_many_arguments)]
fn drive(
    door: &FrontDoor,
    tenant: &str,
    queries: &[SpjQuery],
    stream: &MutationStream,
    next_batch: &mut usize,
    rate: f64,
    secs: f64,
    ingest_every: usize,
    seed: u64,
) -> ClientCounts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = ClientCounts::default();
    let period = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut next = start;
    let mut sent = 0usize;
    while start.elapsed().as_secs_f64() < secs {
        sent += 1;
        let req = if sent.is_multiple_of(ingest_every) && !stream.batches.is_empty() {
            let batch = &stream.batches[*next_batch % stream.batches.len()];
            *next_batch += 1;
            let body = serde_json::to_string(batch).expect("batch serializes");
            Request::new("POST", &format!("/v1/{tenant}/ingest"), body)
        } else {
            let q = &queries[rng.gen_range(0..queries.len())];
            let wire = WireEstimate {
                tables: q.tables.iter().map(|t| t.0).collect(),
                predicates: jitter(q, &mut rng),
                deadline_ms: None,
            };
            let body = serde_json::to_string(&wire).expect("estimate serializes");
            Request::new("POST", &format!("/v1/{tenant}/estimate"), body)
        };
        let resp = door.handle(&req);
        match resp.status {
            200 => counts.http_200 += 1,
            429 => counts.http_429 += 1,
            _ => counts.http_other += 1,
        }
        next += period;
        match next.checked_duration_since(Instant::now()) {
            Some(d) => std::thread::sleep(d),
            None => next = Instant::now(), // fell behind; don't burst-catch-up
        }
    }
    counts
}

fn phase_stats(
    before: &sqe_server::MetricsSnapshot,
    after: &sqe_server::MetricsSnapshot,
    counts: ClientCounts,
) -> PhaseStats {
    let rung_mix: Vec<RungShare> = after
        .rungs
        .iter()
        .zip(&before.rungs)
        .map(|(a, b)| RungShare {
            rung: a.rung.clone(),
            served: a.served - b.served,
        })
        .collect();
    let served: u64 = rung_mix.iter().map(|r| r.served).sum();
    let full = rung_mix
        .iter()
        .find(|r| r.rung == "full")
        .map_or(0, |r| r.served);
    PhaseStats {
        served,
        full_fraction: if served == 0 {
            1.0
        } else {
            full as f64 / served as f64
        },
        rung_mix,
        sheds: after.sheds - before.sheds,
        shed_retry_ms_max: after.shed_retry_ms_max,
        p50_us: after.p50_us,
        p99_us: after.p99_us,
        p999_us: after.p999_us,
        max_epoch: after.max_epoch,
        http_200: counts.http_200,
        http_429: counts.http_429,
    }
}

/// One HTTP exchange over a real loopback socket (Connection: close).
fn tcp_roundtrip(addr: std::net::SocketAddr, raw: &[u8]) -> Option<String> {
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(raw).ok()?;
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok()?;
    String::from_utf8(out).ok()
}

fn main() {
    let args = Args::parse();
    let n_tenants: usize = args.get("tenants", 4);
    let baseline_secs: f64 = args.get("baseline-secs", 3.0);
    let overload_secs: f64 = args.get("overload-secs", 8.0);
    let scale: f64 = args.get("scale", 0.002);
    let cold_rate: f64 = args.get("cold-rate", 40.0);
    assert!(
        n_tenants >= 2,
        "need a hot tenant and at least one cold one"
    );

    let mut failures: Vec<String> = Vec::new();
    let check = |cond: bool, msg: String, failures: &mut Vec<String>| {
        if !cond {
            failures.push(msg);
        }
    };

    // --- Tenants: own TPC-C database + J2 pool each -------------------
    eprintln!("building {n_tenants} tenant catalogs ...");
    let door = Arc::new(FrontDoor::new(16));
    let mut tenants: Vec<Arc<Tenant>> = Vec::new();
    let mut workloads: Vec<Vec<SpjQuery>> = Vec::new();
    let mut streams: Vec<MutationStream> = Vec::new();
    for i in 0..n_tenants {
        let hot = i == 0;
        let t = Tpcc::generate(TpccConfig {
            scale,
            min_rows: 120,
            seed: 0x50AC_0000 + i as u64,
            ..TpccConfig::default()
        });
        // The hot tenant runs wide queries (deep joins + many filters) so
        // its full DP is expensive enough for deadline compression to
        // bite; cold tenants run narrow, fast ones.
        let wl = generate_workload(
            &t.db,
            &t.join_edges,
            &t.filter_columns,
            WorkloadConfig {
                queries: 8,
                joins: if hot { 4 } else { 2 },
                filters: if hot { 8 } else { 2 },
                target_selectivity: 0.05,
                seed: 0x50AC_1000 + i as u64,
            },
        );
        let pool = build_pool(&t.db, &wl, PoolSpec::ji(2)).expect("pool build");
        let stream = generate_mutations(
            &t.db,
            MutationConfig {
                ops: 600,
                batch_size: 20,
                seed: 0x50AC_2000 + i as u64,
                drift: 0.5,
            },
        );
        // Quota filled in below once the hot ceiling is calibrated.
        let tenant = door.add_tenant(
            &format!("t{i}"),
            t.db.clone(),
            pool,
            TenantConfig {
                quota: QuotaConfig {
                    rate: cold_rate,
                    burst: 10.0,
                    max_in_flight: 2,
                    deadline_ceiling: Duration::from_millis(50),
                },
                service: ServiceConfig::default(),
                delta: DeltaConfig::default(),
            },
        );
        tenants.push(tenant);
        workloads.push(wl);
        streams.push(stream);
    }

    // --- Calibrate the hot tenant's ceiling ---------------------------
    // Median uncached full-DP cost of its wide queries on *this* machine.
    let mut rng = StdRng::seed_from_u64(0xCA11);
    let mut costs: Vec<Duration> = (0..6)
        .map(|k| {
            let q = &workloads[0][k % workloads[0].len()];
            let jq = SpjQuery::new(q.tables.clone(), jitter(q, &mut rng)).expect("jittered query");
            let t0 = Instant::now();
            tenants[0].service().estimate(&jq);
            t0.elapsed()
        })
        .collect();
    costs.sort();
    let wide_cost = costs[costs.len() / 2];
    let ceiling = (wide_cost * 3).clamp(Duration::from_millis(1), Duration::from_secs(1));
    // The hot tenant's sustainable rate is tied to the measured cost so a
    // single driver thread can actually reach 2× overload.
    let hot_rate = (0.25 / wide_cost.as_secs_f64()).clamp(5.0, 100.0);
    eprintln!(
        "calibrated: wide full-DP ≈ {wide_cost:?}, hot ceiling {ceiling:?}, hot rate {hot_rate:.1}/s"
    );
    // Re-register the hot tenant with the calibrated quota (same catalog).
    let t0_data = Tpcc::generate(TpccConfig {
        scale,
        min_rows: 120,
        seed: 0x50AC_0000,
        ..TpccConfig::default()
    });
    let pool0 = build_pool(&t0_data.db, &workloads[0], PoolSpec::ji(2)).expect("pool rebuild");
    tenants[0] = door.add_tenant(
        "t0",
        t0_data.db.clone(),
        pool0,
        TenantConfig {
            quota: QuotaConfig {
                rate: hot_rate,
                burst: (hot_rate * 0.25).max(5.0),
                max_in_flight: 2,
                deadline_ceiling: ceiling,
            },
            service: ServiceConfig::default(),
            delta: DeltaConfig::default(),
        },
    );

    let rates: Vec<f64> = (0..n_tenants)
        .map(|i| if i == 0 { hot_rate } else { cold_rate })
        .collect();

    // --- Phase 1: everyone inside quota (0.8×) ------------------------
    eprintln!("phase 1: baseline, {baseline_secs}s ...");
    let snap_before: Vec<_> = tenants.iter().map(|t| t.metrics().snapshot()).collect();
    let mut batch_cursors = vec![0usize; n_tenants];
    let baseline_counts: Vec<ClientCounts> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_tenants)
            .map(|i| {
                let door = &door;
                let wl = &workloads[i];
                let stream = &streams[i];
                let rate = rates[i] * 0.8;
                s.spawn(move || {
                    let mut cursor = 0usize;
                    drive(
                        door,
                        &format!("t{i}"),
                        wl,
                        stream,
                        &mut cursor,
                        rate,
                        baseline_secs,
                        10,
                        0xB45E + i as u64,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let snap_mid: Vec<_> = tenants.iter().map(|t| t.metrics().snapshot()).collect();

    // --- Phase 2: tenant 0 at 2× its quota ----------------------------
    eprintln!("phase 2: overload t0 at 2x, {overload_secs}s ...");
    let overload_counts: Vec<ClientCounts> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_tenants)
            .map(|i| {
                let door = &door;
                let wl = &workloads[i];
                let stream = &streams[i];
                let cursor0 = batch_cursors[i];
                let rate = if i == 0 {
                    rates[0] * 2.0
                } else {
                    rates[i] * 0.8
                };
                s.spawn(move || {
                    let mut cursor = cursor0;
                    let c = drive(
                        door,
                        &format!("t{i}"),
                        wl,
                        stream,
                        &mut cursor,
                        rate,
                        overload_secs,
                        10,
                        0x0E71 + i as u64,
                    );
                    (c, cursor)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                let (c, cursor) = h.join().expect("client");
                batch_cursors[i] = cursor;
                c
            })
            .collect()
    });
    let snap_after: Vec<_> = tenants.iter().map(|t| t.metrics().snapshot()).collect();

    // --- Assemble per-tenant reports ----------------------------------
    let mut tenant_reports = Vec::new();
    for i in 0..n_tenants {
        tenant_reports.push(TenantReport {
            name: format!("t{i}"),
            hot: i == 0,
            rate: rates[i],
            ceiling_ms: if i == 0 {
                ceiling.as_secs_f64() * 1e3
            } else {
                50.0
            },
            baseline: phase_stats(&snap_before[i], &snap_mid[i], baseline_counts[i]),
            overload: phase_stats(&snap_mid[i], &snap_after[i], overload_counts[i]),
        });
    }

    // --- Acceptance: overload degrades the hot tenant only -----------
    let hot = &tenant_reports[0];
    let hot_degraded: u64 = hot
        .overload
        .rung_mix
        .iter()
        .filter(|r| r.rung != Quality::Full.label())
        .map(|r| r.served)
        .sum();
    check(
        hot_degraded > 0,
        format!(
            "hot tenant never degraded under 2x overload (rung mix {:?})",
            hot.overload.rung_mix
        ),
        &mut failures,
    );
    check(
        hot.overload.sheds > 0,
        "hot tenant was never shed under 2x overload".to_string(),
        &mut failures,
    );
    let retry_cap_ms = tenants[0].retry_cap().as_secs_f64() * 1e3;
    check(
        hot.overload.shed_retry_ms_max > 0.0
            && hot.overload.shed_retry_ms_max <= retry_cap_ms + 1e-6,
        format!(
            "hot retry_after {}ms not in (0, cap {retry_cap_ms}ms]",
            hot.overload.shed_retry_ms_max
        ),
        &mut failures,
    );
    for tr in &tenant_reports[1..] {
        check(
            tr.overload.full_fraction >= 0.99,
            format!(
                "cold tenant {} degraded during overload: full fraction {:.4}",
                tr.name, tr.overload.full_fraction
            ),
            &mut failures,
        );
        check(
            tr.overload.p99_us <= 50_000,
            format!(
                "cold tenant {} p99 {}us exceeds its 50ms SLO",
                tr.name, tr.overload.p99_us
            ),
            &mut failures,
        );
        check(
            tr.overload.max_epoch > 0,
            format!("cold tenant {} never advanced its ingest epoch", tr.name),
            &mut failures,
        );
    }
    check(
        hot.overload.max_epoch > 0,
        "hot tenant never advanced its ingest epoch".to_string(),
        &mut failures,
    );

    // --- Leak check: every pool back to idle --------------------------
    let global_in_flight = door.global_admission().in_flight();
    check(
        global_in_flight == 0,
        format!("global admission leaked: {global_in_flight} in flight after load stopped"),
        &mut failures,
    );
    let tenant_in_flight: Vec<usize> = tenants.iter().map(|t| t.admission().in_flight()).collect();
    for (i, &n) in tenant_in_flight.iter().enumerate() {
        check(
            n == 0,
            format!("tenant t{i} admission leaked: {n} in flight"),
            &mut failures,
        );
    }

    // --- TCP smoke: the reactor answers real sockets ------------------
    eprintln!("tcp smoke ...");
    let handle = sqe_server::spawn(Arc::clone(&door), "127.0.0.1:0").expect("bind loopback");
    let addr = handle.addr();
    let mut tcp_requests = 0usize;
    let mut tcp_ok = 0usize;
    let mut probe = |raw: &[u8], want: &str, failures: &mut Vec<String>| {
        tcp_requests += 1;
        match tcp_roundtrip(addr, raw) {
            Some(resp) if resp.contains(want) => tcp_ok += 1,
            Some(resp) => failures.push(format!(
                "tcp: missing {want:?} in response head {:?}",
                resp.lines().next().unwrap_or("")
            )),
            None => failures.push("tcp: roundtrip failed".to_string()),
        }
    };
    probe(
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        "200 OK",
        &mut failures,
    );
    probe(
        b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        "sqe_rung_answered_total",
        &mut failures,
    );
    for (i, workload) in workloads.iter().enumerate().take(n_tenants) {
        let q = &workload[0];
        let wire = WireEstimate {
            tables: q.tables.iter().map(|t| t.0).collect(),
            predicates: q.predicates.clone(),
            deadline_ms: Some(1_000),
        };
        let body = serde_json::to_string(&wire).expect("estimate serializes");
        let raw = format!(
            "POST /v1/t{i}/estimate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        probe(raw.as_bytes(), "\"quality\"", &mut failures);
    }
    handle.shutdown();

    // --- Report --------------------------------------------------------
    let rows: Vec<Vec<String>> = tenant_reports
        .iter()
        .map(|tr| {
            vec![
                tr.name.clone(),
                if tr.hot { "2.0x" } else { "0.8x" }.to_string(),
                format!("{}", tr.overload.served),
                format!("{:.3}", tr.overload.full_fraction),
                format!("{}", tr.overload.sheds),
                format!("{:.1}", tr.overload.shed_retry_ms_max),
                format!("{}", tr.overload.p99_us),
                format!("{}", tr.overload.max_epoch),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["tenant", "drive", "served", "full%", "sheds", "retry_ms", "p99_us", "epoch"],
            &rows
        )
    );

    let report = SoakReport {
        tenants: n_tenants,
        baseline_secs,
        overload_secs,
        calibrated_wide_cost_us: wide_cost.as_micros() as u64,
        global_max_in_flight: door.global_admission().max_in_flight(),
        tenant_reports,
        global_in_flight_after: global_in_flight,
        tenant_in_flight_after: tenant_in_flight,
        tcp_requests,
        tcp_ok,
        violations: failures.clone(),
    };
    match write_json("soak", &report) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write soak.json: {e}");
            failures.push(format!("write soak.json: {e}"));
        }
    }

    if failures.is_empty() {
        eprintln!("soak: all checks passed");
    } else {
        eprintln!("soak: {} violation(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}

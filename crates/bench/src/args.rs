//! Minimal command-line parsing for the experiment binaries (no external
//! dependency): `--key value` pairs with typed accessors.

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments. Unknown keys are kept (callers decide
    /// what they use); a dangling `--key` without value becomes `"true"`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list (tests).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                continue;
            };
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(),
            };
            values.insert(key.to_string(), value);
        }
        Args { values }
    }

    /// Typed accessor with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String accessor with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Flag accessor.
    pub fn flag(&self, key: &str) -> bool {
        self.values.get(key).is_some_and(|v| v != "false")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_typed_values() {
        let a = args(&["--queries", "50", "--scale", "0.5", "--tag", "x"]);
        assert_eq!(a.get("queries", 100usize), 50);
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert_eq!(a.get_str("tag", "d"), "x");
        assert_eq!(a.get("missing", 7u32), 7);
        assert_eq!(a.get_str("missing", "d"), "d");
    }

    #[test]
    fn flags_without_values() {
        let a = args(&["--verbose", "--queries", "10"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("queries", 0usize), 10);
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        let a = args(&["--queries", "banana"]);
        assert_eq!(a.get("queries", 42usize), 42);
    }

    #[test]
    fn non_flag_tokens_are_ignored() {
        let a = args(&["stray", "--k", "v"]);
        assert_eq!(a.get_str("k", ""), "v");
    }
}

//! The standard experimental setup of §5: snowflake database, random SPJ
//! workloads, and `J_i` SIT pools.

use sqe_core::{build_pool, PoolSpec, SitCatalog};
use sqe_datagen::{generate_workload, Snowflake, SnowflakeConfig, WorkloadConfig};
use sqe_engine::SpjQuery;

/// Knobs for the shared setup (defaults follow the paper, scaled down so
/// experiments run in minutes on a laptop; pass `--scale 1.0` for the
/// paper's 1K–1M table sizes).
#[derive(Debug, Clone, Copy)]
pub struct SetupConfig {
    /// Database scale factor (1.0 = paper sizes).
    pub scale: f64,
    /// Queries per workload (paper: 100).
    pub queries: usize,
    /// Filter predicates per query (paper: 3).
    pub filters: usize,
    /// Target filter selectivity (paper: 0.05).
    pub target_selectivity: f64,
    /// Zipf exponent of the generated skew.
    pub theta: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            scale: 0.01,
            queries: 100,
            filters: 3,
            target_selectivity: 0.05,
            theta: 1.0,
            seed: 0x51_2004,
        }
    }
}

impl SetupConfig {
    /// Builds a config from parsed [`crate::Args`].
    pub fn from_args(args: &crate::Args) -> Self {
        let d = SetupConfig::default();
        SetupConfig {
            scale: args.get("scale", d.scale),
            queries: args.get("queries", d.queries),
            filters: args.get("filters", d.filters),
            target_selectivity: args.get("selectivity", d.target_selectivity),
            theta: args.get("theta", d.theta),
            seed: args.get("seed", d.seed),
        }
    }
}

/// The generated database plus helpers to derive workloads and pools.
pub struct Setup {
    /// The snowflake database and schema metadata.
    pub snowflake: Snowflake,
    config: SetupConfig,
}

impl Setup {
    /// Generates the snowflake database.
    pub fn new(config: SetupConfig) -> Self {
        let snowflake = Snowflake::generate(SnowflakeConfig {
            scale: config.scale,
            theta: config.theta,
            seed: config.seed,
            ..SnowflakeConfig::default()
        });
        Setup { snowflake, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> SetupConfig {
        self.config
    }

    /// A workload of `J`-way-join queries (J join predicates each).
    pub fn workload(&self, joins: usize) -> Vec<SpjQuery> {
        generate_workload(
            &self.snowflake.db,
            &self.snowflake.join_edges,
            &self.snowflake.filter_columns,
            WorkloadConfig {
                queries: self.config.queries,
                joins,
                filters: self.config.filters,
                target_selectivity: self.config.target_selectivity,
                seed: self.config.seed ^ (joins as u64).wrapping_mul(0x9E37_79B9),
            },
        )
    }

    /// A mixed workload: equal shares of `J ∈ joins` queries (Figure 5's
    /// "3- to 7-way join queries").
    pub fn mixed_workload(&self, joins: &[usize]) -> Vec<SpjQuery> {
        let per = (self.config.queries / joins.len()).max(1);
        let mut out = Vec::with_capacity(per * joins.len());
        for &j in joins {
            out.extend(generate_workload(
                &self.snowflake.db,
                &self.snowflake.join_edges,
                &self.snowflake.filter_columns,
                WorkloadConfig {
                    queries: per,
                    joins: j,
                    filters: self.config.filters,
                    target_selectivity: self.config.target_selectivity,
                    seed: self.config.seed ^ (j as u64).wrapping_mul(0x1234_5677),
                },
            ));
        }
        out
    }

    /// The `J_i` SIT pool for a workload.
    pub fn pool(&self, workload: &[SpjQuery], i: usize) -> SitCatalog {
        build_pool(&self.snowflake.db, workload, PoolSpec::ji(i))
            .expect("pool construction over generated data succeeds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Setup {
        Setup::new(SetupConfig {
            scale: 0.002,
            queries: 4,
            ..SetupConfig::default()
        })
    }

    #[test]
    fn workloads_have_requested_join_count() {
        let s = tiny();
        for j in [3, 5, 7] {
            let wl = s.workload(j);
            assert_eq!(wl.len(), 4);
            assert!(wl.iter().all(|q| q.join_count() == j));
        }
    }

    #[test]
    fn mixed_workload_covers_all_sizes() {
        let s = tiny();
        let wl = s.mixed_workload(&[3, 4]);
        assert_eq!(wl.len(), 4);
        let mut sizes: Vec<usize> = wl.iter().map(|q| q.join_count()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4, 4]);
    }

    #[test]
    fn pools_grow_monotonically() {
        let s = tiny();
        let wl = s.workload(3);
        let sizes: Vec<usize> = (0..=3).map(|i| s.pool(&wl, i).len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        assert!(sizes[0] < sizes[1]);
    }
}

//! Plain-text tables and JSON result dumps.
//!
//! Every experiment binary prints a human-readable table *and* writes the
//! same data as JSON under `results/`, so EXPERIMENTS.md numbers are
//! regenerable and diffable.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float compactly (3 significant-ish digits, scientific for
/// extremes).
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e7 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

/// Rounds a microsecond latency to nanosecond precision (three decimals),
/// so serialized timings don't carry binary-float noise like
/// `914232.516000000003` into committed JSON — a nanosecond is already an
/// order of magnitude below `Instant` jitter on this path.
pub fn round_us(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Resolves the `results/` directory (repo root when run via cargo,
/// current dir otherwise) and ensures it exists.
pub fn results_dir() -> PathBuf {
    let candidates = [
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
        PathBuf::from("results"),
    ];
    for c in &candidates {
        if c.parent().is_some_and(Path::exists) {
            let _ = fs::create_dir_all(c);
            if c.exists() {
                return c.clone();
            }
        }
    }
    PathBuf::from(".")
}

/// Writes an experiment result as pretty JSON under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    write_json_to(results_dir(), name, value)
}

/// Writes a benchmark result as pretty JSON at the **repo root**
/// (`<name>.json`), for committed perf-trajectory files like
/// `BENCH_estimator.json` that live next to `EXPERIMENTS.md` rather than
/// under `results/`.
pub fn write_json_root<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = if root.exists() {
        root
    } else {
        PathBuf::from(".")
    };
    write_json_to(dir, name, value)
}

fn write_json_to<T: Serialize>(dir: PathBuf, name: &str, value: &T) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["pool", "noSit", "GS-Diff"],
            &[
                vec!["J0".into(), "62466".into(), "62466".into()],
                vec!["J7".into(), "62466".into(), "1679".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("1679"));
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.123456), "0.123");
        assert_eq!(fmt_num(1234.5), "1234");
        assert_eq!(fmt_num(1.5e9), "1.50e9");
        assert_eq!(fmt_num(1e-6), "1.00e-6");
    }

    #[test]
    fn microseconds_round_to_nanosecond_precision() {
        assert_eq!(round_us(914_232.516_000_000_003), 914_232.516);
        assert_eq!(round_us(0.000_4), 0.0);
        assert_eq!(round_us(0.000_6), 0.001);
        assert_eq!(round_us(12.0), 12.0);
        // Round-tripping through JSON keeps the short decimal form.
        assert_eq!(
            serde_json::to_string(&round_us(914_232.516_000_000_003)).unwrap(),
            "914232.516"
        );
    }

    #[test]
    fn json_round_trips() {
        #[derive(Serialize)]
        struct Demo {
            x: u32,
        }
        let path = write_json("test_report_demo", &Demo { x: 7 }).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x\": 7"));
        let _ = std::fs::remove_file(path);
    }
}

//! Criterion micro-benchmarks for the histogram substrate: construction
//! (maxDiff vs equi-depth vs equi-width), range estimation, the histogram
//! equi-join of §3.3, and the `diff` metric of §3.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqe_histogram::{
    build_equi_depth, build_equi_width, build_exact, build_maxdiff, diff_exact,
    diff_from_histograms, Hist2d, Histogram, Sample, WaveletSynopsis,
};

fn zipfish_values(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-9..1.0);
            // Inverse-power sample: heavy head, long tail.
            (1000.0 * u.powf(2.0)) as i64
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram_build");
    for &n in &[10_000usize, 100_000] {
        let values = zipfish_values(n, 1);
        group.bench_with_input(BenchmarkId::new("maxdiff", n), &values, |b, v| {
            b.iter(|| build_maxdiff(black_box(v), 0, 200))
        });
        group.bench_with_input(BenchmarkId::new("equi_depth", n), &values, |b, v| {
            b.iter(|| build_equi_depth(black_box(v), 0, 200))
        });
        group.bench_with_input(BenchmarkId::new("equi_width", n), &values, |b, v| {
            b.iter(|| build_equi_width(black_box(v), 0, 200))
        });
    }
    group.finish();
}

fn bench_estimate(c: &mut Criterion) {
    let values = zipfish_values(100_000, 2);
    let h = build_maxdiff(&values, 0, 200);
    let mut group = c.benchmark_group("histogram_estimate");
    group.bench_function("range_selectivity", |b| {
        b.iter(|| h.range_selectivity(black_box(100), black_box(500)))
    });
    group.bench_function("eq_selectivity", |b| {
        b.iter(|| h.eq_selectivity(black_box(42)))
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let a = build_maxdiff(&zipfish_values(100_000, 3), 0, 200);
    let b_hist = build_maxdiff(&zipfish_values(100_000, 4), 0, 200);
    c.bench_function("histogram_join_200x200", |b| {
        b.iter(|| {
            let r = black_box(&a).join(black_box(&b_hist));
            black_box(r.selectivity)
        })
    });
}

fn bench_diff(c: &mut Criterion) {
    let base = zipfish_values(100_000, 5);
    let expr: Vec<i64> = base.iter().map(|v| v / 2).collect();
    let hb: Histogram = build_exact(&base, 0);
    let he: Histogram = build_exact(&expr, 0);
    let mut group = c.benchmark_group("diff_metric");
    group.bench_function("exact_100k", |b| {
        b.iter(|| diff_exact(black_box(&base), black_box(&expr)))
    });
    group.bench_function("from_histograms", |b| {
        b.iter(|| diff_from_histograms(black_box(&hb), black_box(&he)))
    });
    group.finish();
}

fn bench_alternative_statistics(c: &mut Criterion) {
    let values = zipfish_values(100_000, 6);
    let mut group = c.benchmark_group("alternative_statistics");
    group.bench_function("sample_build_200", |b| {
        b.iter(|| Sample::build(black_box(&values), 0, 200, 7))
    });
    let sample = Sample::build(&values, 0, 200, 7);
    group.bench_function("sample_range_estimate", |b| {
        b.iter(|| sample.range_selectivity(black_box(10), black_box(200)))
    });
    group.bench_function("wavelet_build_200", |b| {
        b.iter(|| WaveletSynopsis::build(black_box(&values), 0, 200))
    });
    let wavelet = WaveletSynopsis::build(&values, 0, 200);
    group.bench_function("wavelet_range_estimate", |b| {
        b.iter(|| wavelet.range_selectivity(black_box(10), black_box(200)))
    });
    group.finish();
}

fn bench_hist2d(c: &mut Criterion) {
    let pairs: Vec<(i64, i64)> = zipfish_values(100_000, 8)
        .into_iter()
        .zip(zipfish_values(100_000, 9))
        .collect();
    let mut group = c.benchmark_group("hist2d");
    group.sample_size(20);
    group.bench_function("build_128x32", |b| {
        b.iter(|| Hist2d::build(black_box(&pairs), 0, 128, 32))
    });
    let grid = Hist2d::build(&pairs, 0, 128, 32);
    let other = build_maxdiff(&zipfish_values(50_000, 10), 0, 200);
    group.bench_function("join_carry", |b| {
        b.iter(|| black_box(grid.join_carry(black_box(&other))).0)
    });
    group.bench_function("conditional_y", |b| {
        b.iter(|| {
            grid.conditional_y(black_box(10), black_box(300))
                .valid_rows()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_estimate,
    bench_join,
    bench_diff,
    bench_alternative_statistics,
    bench_hist2d
);
criterion_main!(benches);

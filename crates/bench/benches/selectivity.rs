//! Criterion benchmarks for `getSelectivity` itself: scaling with the
//! number of predicates (the `O(3ⁿ)` subset walk), the error-function
//! ablation (nInd vs Diff), memo reuse across sub-query requests, and the
//! GVM baseline for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sqe_bench::{Setup, SetupConfig};
use sqe_core::{ErrorMode, GreedyViewMatching, SelectivityEstimator, SitCatalog};
use sqe_engine::SpjQuery;

struct Fixture {
    setup: Setup,
    workloads: Vec<(usize, Vec<SpjQuery>)>,
    pools: Vec<(usize, SitCatalog)>,
}

fn fixture() -> Fixture {
    let setup = Setup::new(SetupConfig {
        scale: 0.003,
        queries: 4,
        ..SetupConfig::default()
    });
    let workloads: Vec<(usize, Vec<SpjQuery>)> = [3usize, 5, 7]
        .into_iter()
        .map(|j| (j, setup.workload(j)))
        .collect();
    let pools = workloads
        .iter()
        .map(|(j, wl)| (*j, setup.pool(wl, 2)))
        .collect();
    Fixture {
        setup,
        workloads,
        pools,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("get_selectivity_scaling");
    group.sample_size(20);
    for ((j, wl), (_, pool)) in f.workloads.iter().zip(&f.pools) {
        // n = j joins + 3 filters predicates.
        group.bench_with_input(BenchmarkId::new("full_query", j + 3), &(), |b, _| {
            b.iter(|| {
                let mut est =
                    SelectivityEstimator::new(&f.setup.snowflake.db, &wl[0], pool, ErrorMode::NInd);
                black_box(est.selectivity())
            })
        });
    }
    group.finish();
}

fn bench_error_modes(c: &mut Criterion) {
    let f = fixture();
    let (_, wl) = &f.workloads[1]; // 5-way joins
    let (_, pool) = &f.pools[1];
    let mut group = c.benchmark_group("error_mode_ablation");
    group.sample_size(20);
    for mode in [ErrorMode::NInd, ErrorMode::Diff] {
        group.bench_function(mode.label(), |b| {
            b.iter(|| {
                let mut est = SelectivityEstimator::new(&f.setup.snowflake.db, &wl[0], pool, mode);
                black_box(est.selectivity())
            })
        });
    }
    group.finish();
}

fn bench_memo_reuse(c: &mut Criterion) {
    let f = fixture();
    let (_, wl) = &f.workloads[1];
    let (_, pool) = &f.pools[1];
    let db = &f.setup.snowflake.db;
    let mut group = c.benchmark_group("memo_reuse");
    group.sample_size(20);
    // Cold: fresh estimator per request (what a naive integration does).
    group.bench_function("cold_per_request", |b| {
        b.iter(|| {
            let mut est = SelectivityEstimator::new(db, &wl[0], pool, ErrorMode::NInd);
            let all = est.context().all();
            for p in all.subsets().take(64) {
                black_box(est.get_selectivity(p));
            }
        })
    });
    // Warm: one estimator answering all requests (the §4 integration).
    group.bench_function("warm_shared_memo", |b| {
        b.iter(|| {
            let mut est = SelectivityEstimator::new(db, &wl[0], pool, ErrorMode::NInd);
            black_box(est.selectivity());
            let all = est.context().all();
            for p in all.subsets().take(64) {
                black_box(est.get_selectivity(p));
            }
        })
    });
    group.finish();
}

fn bench_gvm(c: &mut Criterion) {
    let f = fixture();
    let (_, wl) = &f.workloads[1];
    let (_, pool) = &f.pools[1];
    let db = &f.setup.snowflake.db;
    let mut group = c.benchmark_group("gvm_baseline");
    group.sample_size(20);
    group.bench_function("gvm_full_query", |b| {
        b.iter(|| {
            let mut gvm = GreedyViewMatching::new(db, &wl[0], pool);
            let all = gvm.context().all();
            black_box(gvm.selectivity(all))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_error_modes,
    bench_memo_reuse,
    bench_gvm
);
criterion_main!(benches);

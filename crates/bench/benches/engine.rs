//! Criterion benchmarks for the execution engine: hash-join throughput,
//! full SPJ execution, and the memoized cardinality oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sqe_bench::{Setup, SetupConfig};
use sqe_engine::{execute, execute_connected, CardinalityOracle};

fn bench_execution(c: &mut Criterion) {
    let setup = Setup::new(SetupConfig {
        scale: 0.01,
        queries: 2,
        ..SetupConfig::default()
    });
    let db = &setup.snowflake.db;
    let wl3 = setup.workload(3);
    let wl7 = setup.workload(7);

    let mut group = c.benchmark_group("engine_execute");
    group.sample_size(20);
    group.bench_function("three_way_join_query", |b| {
        let q = &wl3[0];
        b.iter(|| black_box(execute(db, &q.tables, &q.predicates).unwrap()))
    });
    group.bench_function("seven_way_join_query", |b| {
        let q = &wl7[0];
        b.iter(|| black_box(execute(db, &q.tables, &q.predicates).unwrap()))
    });
    group.bench_function("single_fk_join_materialized", |b| {
        let e = setup.snowflake.join_edges[0];
        let tables = [e.fk.table, e.pk.table];
        let preds = [e.predicate()];
        b.iter(|| black_box(execute_connected(db, &tables, &preds).unwrap().len()))
    });
    group.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let setup = Setup::new(SetupConfig {
        scale: 0.005,
        queries: 2,
        ..SetupConfig::default()
    });
    let db = &setup.snowflake.db;
    let wl = setup.workload(4);
    let q = &wl[0];

    let mut group = c.benchmark_group("cardinality_oracle");
    group.sample_size(10);
    // Cold: every subset executed from scratch (fresh oracle).
    group.bench_function("all_subsets_cold", |b| {
        b.iter(|| {
            let mut oracle = CardinalityOracle::new(db);
            let n = q.predicates.len();
            for mask in 1u32..(1 << n) {
                let preds: Vec<_> = q
                    .predicates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, p)| *p)
                    .collect();
                black_box(oracle.cardinality(&q.tables, &preds).unwrap());
            }
        })
    });
    // Warm: the memo already has every component.
    group.bench_function("all_subsets_warm", |b| {
        let mut oracle = CardinalityOracle::new(db);
        let n = q.predicates.len();
        let all_subsets: Vec<Vec<_>> = (1u32..(1 << n))
            .map(|mask| {
                q.predicates
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, p)| *p)
                    .collect()
            })
            .collect();
        for preds in &all_subsets {
            oracle.cardinality(&q.tables, preds).unwrap();
        }
        b.iter(|| {
            for preds in &all_subsets {
                black_box(oracle.cardinality(&q.tables, preds).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_execution, bench_oracle);
criterion_main!(benches);

//! Criterion benchmarks for the mini-Cascades optimizer: memo exploration,
//! coupled estimation (§4.2), and plan extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sqe_bench::{Setup, SetupConfig};
use sqe_core::ErrorMode;
use sqe_optimizer::{explore, extract_best_plan, Memo, MemoEstimator};

fn bench_optimizer(c: &mut Criterion) {
    let setup = Setup::new(SetupConfig {
        scale: 0.003,
        queries: 2,
        ..SetupConfig::default()
    });
    let db = &setup.snowflake.db;
    let wl = setup.workload(5);
    let q = &wl[0];
    let pool = setup.pool(&wl, 2);

    let mut group = c.benchmark_group("optimizer");
    group.sample_size(20);
    group.bench_function("memo_seed", |b| {
        b.iter(|| black_box(Memo::new(db, q).group_count()))
    });
    group.bench_function("explore_to_fixpoint", |b| {
        b.iter(|| {
            let mut memo = Memo::new(db, q);
            black_box(explore(&mut memo))
        })
    });
    group.bench_function("coupled_estimation", |b| {
        let mut memo = Memo::new(db, q);
        explore(&mut memo);
        b.iter(|| {
            let mut est = MemoEstimator::new(db, q, &pool, ErrorMode::Diff);
            est.estimate_memo(&memo);
            black_box(est.group_estimate(memo.root()))
        })
    });
    group.bench_function("plan_extraction", |b| {
        let mut memo = Memo::new(db, q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(db, q, &pool, ErrorMode::Diff);
        est.estimate_memo(&memo);
        b.iter(|| black_box(extract_best_plan(&memo, &est)))
    });
    group.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);

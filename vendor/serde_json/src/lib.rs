//! Offline stand-in for `serde_json`, working over the vendored `serde`
//! value tree ([`serde::Value`]).
//!
//! Floats are printed with Rust's shortest-round-trip `Display`, so every
//! finite `f64` survives a save/load cycle bit-identically (the catalog
//! persistence tests rely on this). Non-finite floats are rejected, as in
//! real JSON.

use serde::{Deserialize, Serialize, Value};

/// JSON error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::msg("non-finite float is not valid JSON"));
            }
            let s = x.to_string();
            out.push_str(&s);
            // Keep floats recognizable as floats on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`), and a lock
//! held by a panicking thread is recovered instead of poisoning — matching
//! parking_lot's no-poisoning semantics, which the service layer's shared
//! caches rely on.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

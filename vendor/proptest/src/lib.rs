//! Offline stand-in for `proptest`.
//!
//! Random-input property testing with proptest's API shape: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map`, range and tuple strategies, `collection::vec`,
//! `option::of`, `any::<bool>()`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are drawn from a per-test
//! deterministic RNG (seeded from the test name), there is no shrinking,
//! and a failing case panics with its case number instead of a minimized
//! input. That trades debuggability for zero dependencies, which the
//! offline build requires.

/// Deterministic test RNG (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic stream keyed by the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values passing `f` (regenerates otherwise).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Maps through `f`, regenerating whenever `f` returns `None`.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erased form (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Retry budget for filtering combinators before giving up.
    const FILTER_RETRIES: usize = 1_000;

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter `{}` rejected {FILTER_RETRIES} candidates",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map `{}` rejected {FILTER_RETRIES} candidates",
                self.whence
            );
        }
    }

    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among several strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// `Just(x)`: always generates a clone of `x`.
    #[derive(Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// A length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind `any::<T>()`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for a primitive.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyStrategy(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i8 => |rng| rng.next_u64() as i8,
        i16 => |rng| rng.next_u64() as i16,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        isize => |rng| rng.next_u64() as isize,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestRng};

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Declares property tests. Each `name(arg in strategy, ...)` item becomes
/// a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                }
            }
        }
    )*};
}

/// Asserts inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let left = $a;
        let right = $b;
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

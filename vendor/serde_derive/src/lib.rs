//! Derive macros for the vendored `serde` stand-in.
//!
//! Since neither `syn` nor `quote` is available offline, the item is parsed
//! directly from the raw token stream. Supported shapes (the ones this
//! workspace serializes):
//!
//! * structs with named fields → JSON object;
//! * tuple structs with one field (newtypes) → the inner value;
//! * tuple structs with several fields → JSON array;
//! * enums with unit variants → the variant name as a string;
//! * enums with struct/tuple variants → externally tagged
//!   `{"Variant": {...}}` / `{"Variant": [...]}` objects.
//!
//! Generics and serde container attributes are intentionally unsupported:
//! hitting one is a compile error rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: field count.
    TupleStruct(usize),
    /// Enum: (variant name, variant shape) pairs.
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` (value-tree parsing).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive on generic type `{name}` is unsupported"));
    }
    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected item body, found {other:?}")),
    };
    let shape = if kind == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Shape::Struct(parse_named_fields(body.stream())?),
            Delimiter::Parenthesis => Shape::TupleStruct(count_tuple_fields(body.stream())),
            d => return Err(format!("unexpected struct body delimiter {d:?}")),
        }
    } else {
        Shape::Enum(parse_variants(body.stream())?)
    };
    Ok(Item { name, shape })
}

/// Skips leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a `{ name: Type, ... }` body. Types are skipped by
/// consuming tokens to the next comma at zero angle-bracket depth (group
/// tokens are opaque, so only `<`/`>` need tracking).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Number of fields of a tuple-struct `( Type, ... )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = true;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<(String, VariantShape)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!("discriminant on variant `{name}` is unsupported"));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}serde::Value::Object(fields)"
            )
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => {
                        format!("{name}::{v} => serde::Value::Str({v:?}.to_string()),\n")
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push(({f:?}.to_string(), \
                                     serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, serde::Value)> = Vec::new();\n\
                             {pushes}\
                             serde::Value::Object(vec![({v:?}.to_string(), \
                             serde::Value::Object(inner))])\n}}\n"
                        )
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => serde::Value::Object(vec![({v:?}.to_string(), \
                             serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::field(obj, {f:?})?)?,\n")
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 serde::Error::msg(\"expected object for {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         serde::Error::msg(\"tuple too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                 serde::Error::msg(\"expected array for {name}\"))?;\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("{v:?} => return Ok({name}::{v}),\n"))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(\
                                     serde::field(inner, {f:?})?)?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let inner = payload.as_object().ok_or_else(|| \
                             serde::Error::msg(\"expected object payload\"))?;\n\
                             return Ok({name}::{v} {{\n{inits}}});\n}}\n"
                        ))
                    }
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                                     serde::Error::msg(\"variant payload too short\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "{v:?} => {{\n\
                             let items = payload.as_array().ok_or_else(|| \
                             serde::Error::msg(\"expected array payload\"))?;\n\
                             return Ok({name}::{v}({}));\n}}\n",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return Err(serde::Error::msg(format!(\"unknown variant `{{s}}`\"))),\n}}\n}}\n\
                 let obj = v.as_object().ok_or_else(|| \
                 serde::Error::msg(\"expected enum object for {name}\"))?;\n\
                 let (tag, payload) = obj.first().ok_or_else(|| \
                 serde::Error::msg(\"empty enum object\"))?;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(serde::Error::msg(format!(\"unknown variant `{{other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal serialization facade under the `serde` name. Instead
//! of serde's visitor architecture it uses a concrete value tree
//! ([`Value`]): `Serialize` renders a type into a `Value`, `Deserialize`
//! reads it back. The `serde_json` stand-in then prints/parses that tree
//! as JSON text. Derive macros for structs and enums are re-exported from
//! the sibling `serde_derive` proc-macro crate and cover named structs,
//! tuple structs, unit enums, and struct/tuple enum variants — exactly the
//! shapes this workspace serializes.
//!
//! Only the API surface the workspace actually uses is provided; this is
//! not a general serde replacement.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered field list (field order is preserved so output
    /// is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object field list, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The element list, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice, when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a field in an object's field list (derive-macro helper).
pub fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return Err(Error::msg("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    _ => return Err(Error::msg("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

// 128-bit integers are encoded through the 64-bit value variants: values
// beyond 64 bits fall back to a (lossy) float, which no in-repo consumer
// produces (they carry `Duration::as_nanos()` readings).
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::UInt(n),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::UInt(n) => Ok(*n as u128),
            Value::Int(n) => u128::try_from(*n).map_err(|_| Error::msg("integer out of range")),
            _ => Err(Error::msg("expected integer")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(n) => Ok(*n as i128),
            Value::UInt(n) => Ok(*n as i128),
            _ => Err(Error::msg("expected integer")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
                Ok(($($name::from_value(
                    items.get($idx).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API this workspace uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, [`rngs::StdRng`] backed by xoshiro256** seeded via
//! splitmix64, and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Streams are deterministic per seed but do NOT match the real `rand`
//! crate's output; all in-repo consumers only rely on per-seed determinism.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64` uniform in `[0,1)`, `bool` fair coin, integers uniform).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges uniform sampling of `T` is defined over. Parameterized by the
/// element type (matching the real crate) so integer-literal bounds infer
/// their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform sampling over an interval. The blanket
/// `SampleRange` impls below are generic over this trait (one impl per
/// range shape, matching the real crate) so type inference unifies the
/// range's element type with `gen_range`'s return type.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range");
                let offset = (rng.next_u64() as u128) % span as u128;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion. Small, fast, and statistically solid for data
    /// generation purposes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }

    // Re-export so `use rand::seq::SliceRandom` works with `Rng` in scope.
    pub use super::Rng as _;
}

//! Offline stand-in for `criterion`.
//!
//! Provides just enough of criterion's API for the workspace's benches to
//! compile and produce meaningful wall-clock numbers: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics, plots, or
//! baselines — each benchmark is timed over a fixed warm-up plus
//! `sample_size` timed iterations and reported as mean ns/iter.

use std::fmt::Display;
use std::time::Instant;

/// Bench-harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// A group of related benchmarks, printed under a shared heading.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n== {}", name.into());
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&id.to_string(), 10, &mut f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_bench(&id.to_string(), self.sample_size, &mut f);
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&id.to_string(), self.sample_size, &mut |b| f(b, input));
    }

    /// Finishes the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over a warm-up pass plus `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        mean_ns: f64::NAN,
    };
    f(&mut b);
    if b.mean_ns.is_nan() {
        println!("{name:<40} (no measurement)");
    } else {
        println!("{name:<40} {:>14.0} ns/iter", b.mean_ns);
    }
}

/// Re-export matching criterion's for convenience.
pub use std::hint::black_box;

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Integration suite for the multi-tenant HTTP front end (`sqe-server`):
//! wire protocol, the three admission gates and their retry hints,
//! quota/permit leak regressions under injected mid-request panics,
//! per-tenant catalog isolation under concurrent ingest, and exact
//! request accounting with the reactor failpoints armed.
//!
//! Failpoint state is process-global, so every test here takes the
//! shared serial guard even when it arms nothing — an armed
//! `server::handle` from a concurrently running test would otherwise
//! leak into the unrelated ones.

use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqe::core::failpoint::{self, Action};
use sqe::core::DeltaConfig;
use sqe::engine::delta::{DeltaBatch, RowOp, TableDelta};
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;
use sqe::server::{FrontDoor, QuotaConfig, Request, TenantConfig};

/// A generous quota nothing in a test trips by accident.
fn open_quota() -> QuotaConfig {
    QuotaConfig {
        rate: 1e6,
        burst: 1e6,
        max_in_flight: 64,
        deadline_ceiling: Duration::from_secs(10),
    }
}

fn tenant_config(quota: QuotaConfig) -> TenantConfig {
    TenantConfig {
        quota,
        service: ServiceConfig::default(),
        delta: DeltaConfig::default(),
    }
}

/// Three small correlated tables; `salt` varies the content so two
/// tenants can hold genuinely different catalogs.
fn small_db(salt: usize) -> Database {
    let rows = 256usize;
    let mut db = Database::new();
    for t in 0..3 {
        let a: Vec<i64> = (0..rows)
            .map(|r| ((r * 7 + t * 3 + salt * 5) % 23) as i64)
            .collect();
        let b: Vec<i64> = (0..rows)
            .map(|r| ((r * 13 + t * 5 + salt * 11) % 17) as i64)
            .collect();
        db.add_table(
            TableBuilder::new(&format!("t{t}"))
                .column("a", a)
                .column("b", b)
                .build()
                .unwrap(),
        );
    }
    db
}

fn small_queries() -> Vec<SpjQuery> {
    let mut queries = Vec::new();
    for v in 0..4i64 {
        for (l, r) in [(0u32, 1u32), (1, 2)] {
            queries.push(
                SpjQuery::from_predicates(vec![
                    Predicate::join(ColRef::new(TableId(l), 0), ColRef::new(TableId(r), 0)),
                    Predicate::filter(ColRef::new(TableId(l), 1), CmpOp::Eq, v),
                    Predicate::range(ColRef::new(TableId(r), 1), 0, 8 + v),
                ])
                .unwrap(),
            );
        }
    }
    queries
}

/// Registers `name` over a fresh `small_db(salt)` + J1 pool.
fn add_small_tenant(
    door: &FrontDoor,
    name: &str,
    salt: usize,
    quota: QuotaConfig,
) -> Arc<sqe::server::Tenant> {
    let db = small_db(salt);
    let catalog = sqe::core::build_pool(&db, &small_queries(), PoolSpec::ji(1)).expect("pool");
    door.add_tenant(name, db, catalog, tenant_config(quota))
}

/// JSON body for `POST /v1/<t>/estimate`.
fn estimate_body(query: &SpjQuery, deadline_ms: Option<u64>) -> String {
    #[derive(serde::Serialize)]
    struct Wire {
        tables: Vec<u32>,
        predicates: Vec<Predicate>,
        deadline_ms: Option<u64>,
    }
    serde_json::to_string(&Wire {
        tables: query.tables.iter().map(|t| t.0).collect(),
        predicates: query.predicates.clone(),
        deadline_ms,
    })
    .expect("estimate body serializes")
}

/// The wire shape a 200 estimate deserializes back into.
#[derive(serde::Deserialize)]
struct EstimateWire {
    selectivity: f64,
    cardinality: f64,
    error: f64,
    epoch: u64,
    cached: bool,
    quality: String,
    degraded: Option<String>,
    upper_bound: Option<f64>,
}

#[derive(serde::Deserialize)]
struct ErrorWire {
    error: String,
    scope: Option<String>,
    retry_after_ms: Option<f64>,
}

fn body_str(resp: &sqe::server::Response) -> &str {
    std::str::from_utf8(&resp.body).expect("response body is UTF-8")
}

fn parse_estimate(resp: &sqe::server::Response) -> EstimateWire {
    assert_eq!(resp.status, 200, "body: {}", body_str(resp));
    serde_json::from_str(body_str(resp)).expect("estimate response parses")
}

/// Mutation batches over the 3-table schema (inserts + updates only, so
/// row indices stay trivially valid).
fn small_batches(n: usize, ops: usize, seed: u64) -> Vec<DeltaBatch> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    };
    (0..n)
        .map(|seq| {
            let mut per_table: [Vec<RowOp>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for _ in 0..ops {
                let t = (next() % 3) as usize;
                per_table[t].push(if next() % 2 == 0 {
                    RowOp::Insert {
                        values: vec![Some((next() % 23) as i64), Some((next() % 17) as i64)],
                    }
                } else {
                    RowOp::Update {
                        row: (next() as usize) % 256,
                        column: (next() % 2) as u16,
                        value: Some((next() % 23) as i64),
                    }
                });
            }
            DeltaBatch {
                seq: seq as u64,
                deltas: per_table
                    .into_iter()
                    .enumerate()
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(t, ops)| TableDelta {
                        table: TableId(t as u32),
                        ops,
                    })
                    .collect(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------

#[test]
fn wire_protocol_is_total_and_answers_match_the_service() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let door = FrontDoor::new(0); // unbounded global pool
    let tenant = add_small_tenant(&door, "acme", 0, open_quota());
    let queries = small_queries();

    // Health route.
    assert_eq!(
        door.handle(&Request::new("GET", "/healthz", "")).status,
        200
    );

    // A valid estimate answers Full, bit-identical to the in-process
    // service under the same (generous) deadline.
    for q in &queries {
        let resp = door.handle(&Request::new(
            "POST",
            "/v1/acme/estimate",
            estimate_body(q, Some(5_000)),
        ));
        let wire = parse_estimate(&resp);
        let reference = tenant.service().estimate(q);
        assert_eq!(wire.quality, "full");
        assert_eq!(wire.degraded, None);
        assert_eq!(wire.epoch, 0);
        assert_eq!(
            wire.selectivity.to_bits(),
            reference.selectivity.to_bits(),
            "wire answer diverged from the service"
        );
        assert!(wire.cardinality.is_finite() && wire.error.is_finite());
        assert!(wire.upper_bound.map_or(true, f64::is_finite));
        let _ = wire.cached;
    }

    // `deadline_ms: null` means "the tenant's ceiling" and still works.
    let resp = door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(&queries[0], None),
    ));
    assert_eq!(parse_estimate(&resp).quality, "full");

    // Metrics route carries per-tenant series for what we just served.
    let metrics = door.handle(&Request::new("GET", "/metrics", ""));
    assert_eq!(metrics.status, 200);
    assert!(
        body_str(&metrics).contains("sqe_rung_answered_total{tenant=\"acme\",rung=\"full\"}"),
        "metrics must carry per-tenant rung series"
    );
    assert!(body_str(&metrics).contains("sqe_global_in_flight 0"));

    // Stats route parses and counts what we just served.
    let stats = door.handle(&Request::new("GET", "/v1/acme/stats", ""));
    assert_eq!(stats.status, 200);
    assert!(body_str(&stats).contains("\"served_total\""));

    // Garbage maps to labeled 4xx, never a panic.
    for (req, want) in [
        (Request::new("POST", "/v1/nobody/estimate", "{}"), 404),
        (Request::new("POST", "/v1/acme/estimate", "not json"), 400),
        // Missing field: the wire protocol has no defaults.
        (
            Request::new("POST", "/v1/acme/estimate", "{\"tables\":[0]}"),
            400,
        ),
        (Request::new("POST", "/v1/acme/ingest", "{\"seq\":0}"), 400),
        (Request::new("GET", "/v1/acme/estimate", ""), 404),
        (Request::new("DELETE", "/v1/acme/estimate", ""), 405),
        (Request::new("GET", "/no/such/route", ""), 404),
    ] {
        let resp = door.handle(&req);
        assert_eq!(
            resp.status,
            want,
            "{} {}: {}",
            req.method,
            req.target,
            body_str(&resp)
        );
        let err: ErrorWire = serde_json::from_str(body_str(&resp)).expect("error body parses");
        assert!(!err.error.is_empty());
    }
}

// ---------------------------------------------------------------------
// The three admission gates and their hints
// ---------------------------------------------------------------------

#[test]
fn each_gate_sheds_with_its_own_scope_and_a_capped_finite_hint() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let door = FrontDoor::new(2);
    let quota = QuotaConfig {
        rate: 50.0,
        burst: 2.0,
        max_in_flight: 1,
        deadline_ceiling: Duration::from_millis(100),
    };
    let tenant = add_small_tenant(&door, "acme", 0, quota);
    let q = &small_queries()[0];
    let shed = |resp: &sqe::server::Response| -> ErrorWire {
        assert_eq!(resp.status, 429, "body: {}", body_str(resp));
        serde_json::from_str(body_str(resp)).expect("429 body parses")
    };
    let cap_ms = tenant.retry_cap().as_secs_f64() * 1e3;

    // Gate 1 — quota: burst of 2 admits two back-to-back requests, the
    // third refuses with the exact bucket refill as its hint.
    let now = Instant::now();
    assert!(tenant.bucket().try_take(now).is_ok());
    assert!(tenant.bucket().try_take(now).is_ok());
    let resp = door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(q, Some(5_000)),
    ));
    let err = shed(&resp);
    assert_eq!(err.error, "overloaded");
    assert_eq!(err.scope.as_deref(), Some("quota"));
    let hint = err.retry_after_ms.expect("shed carries a hint");
    assert!(
        hint > 0.0 && hint <= quota.full_refill().as_secs_f64() * 1e3 + 1.0,
        "quota hint {hint}ms must be within one full refill"
    );

    // Gate 2 — tenant in-flight: hold the tenant's only permit and pay
    // the bucket back so quota passes.
    std::thread::sleep(Duration::from_millis(60)); // refill ≥ 1 token
    let held = tenant.admission().try_acquire().expect("permit free");
    let err = shed(&door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(q, Some(5_000)),
    )));
    assert_eq!(err.scope.as_deref(), Some("tenant"));
    let hint = err.retry_after_ms.expect("hint");
    assert!(
        hint > 0.0 && hint <= cap_ms + 1e-6,
        "tenant hint {hint}ms over cap {cap_ms}ms"
    );
    drop(held);

    // Gate 3 — global: fill the shared pool from outside; the global
    // telemetry hint must still be capped at this tenant's scale.
    std::thread::sleep(Duration::from_millis(60));
    let g1 = door.global_admission().try_acquire().expect("slot");
    let g2 = door.global_admission().try_acquire().expect("slot");
    let err = shed(&door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(q, Some(5_000)),
    )));
    assert_eq!(err.scope.as_deref(), Some("global"));
    let hint = err.retry_after_ms.expect("hint");
    assert!(
        hint > 0.0 && hint <= cap_ms + 1e-6,
        "global hint {hint}ms must be capped per-tenant at {cap_ms}ms"
    );
    drop(g1);
    drop(g2);

    // Recovery: permits back, bucket refilled → Full again.
    std::thread::sleep(Duration::from_millis(60));
    let resp = door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(q, Some(5_000)),
    ));
    assert_eq!(parse_estimate(&resp).quality, "full");
    assert_eq!(tenant.admission().in_flight(), 0);
    assert_eq!(door.global_admission().in_flight(), 0);
}

// ---------------------------------------------------------------------
// Leak regression: mid-request panic with token spent and permits held
// ---------------------------------------------------------------------

#[test]
fn mid_request_panic_leaks_no_quota_token_or_permit() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let door = Arc::new(FrontDoor::new(2));
    let quota = QuotaConfig {
        rate: 1000.0,
        burst: 100.0,
        max_in_flight: 2,
        deadline_ceiling: Duration::from_secs(5),
    };
    let tenant = add_small_tenant(&door, "acme", 0, quota);
    let q = &small_queries()[0];

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // `server::handle` panics after the quota token is spent and the
    // tenant permit is acquired — the worst point to die at. 8 panics,
    // then the site disarms itself.
    failpoint::arm_with("server::handle", Action::Panic, 1, Some(8), 7);
    let mut panics = 0u32;
    for _ in 0..12 {
        let req = Request::new("POST", "/v1/acme/estimate", estimate_body(q, Some(5_000)));
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| door.handle(&req))) {
            Ok(resp) => assert_eq!(resp.status, 200, "body: {}", body_str(&resp)),
            Err(_) => panics += 1,
        }
        // Invariant after *every* request, panicked or not: nothing held.
        assert_eq!(tenant.admission().in_flight(), 0, "tenant permit leaked");
        assert_eq!(
            door.global_admission().in_flight(),
            0,
            "global permit leaked"
        );
    }
    failpoint::disarm_all();
    std::panic::set_hook(prev_hook);
    assert_eq!(panics, 8, "the armed limit fires exactly 8 times");

    // Bucket accounting: every one of the 12 arrivals was admitted (the
    // burst covers them), none refunded, none double-spent.
    assert_eq!(tenant.bucket().admitted(), 12);
    assert_eq!(tenant.bucket().refused(), 0);
    // After one full refill the bucket is back at its burst cap — a
    // leaked token would leave it short, a refund would overflow it.
    let later = Instant::now() + quota.full_refill();
    let tokens = tenant.bucket().tokens(later);
    assert!(
        (tokens - quota.burst).abs() < 1e-6,
        "bucket settled at {tokens}, want burst {}",
        quota.burst
    );

    // Recovery: the same tenant serves Full immediately.
    let resp = door.handle(&Request::new(
        "POST",
        "/v1/acme/estimate",
        estimate_body(q, Some(5_000)),
    ));
    assert_eq!(parse_estimate(&resp).quality, "full");
}

// ---------------------------------------------------------------------
// Isolation: per-tenant installs race cross-tenant estimates
// ---------------------------------------------------------------------

#[test]
fn concurrent_partial_installs_never_bleed_across_tenants() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let door = Arc::new(FrontDoor::new(0));
    let hot = add_small_tenant(&door, "hot", 1, open_quota());
    let cold = add_small_tenant(&door, "cold", 2, open_quota());
    let queries = small_queries();
    let batches = small_batches(24, 10, 0xFEED);

    // Fault-free references: the cold tenant's bits must never move; the
    // hot tenant's final bits must match a clean replay of its stream.
    let cold_reference: Vec<f64> = queries
        .iter()
        .map(|q| cold.service().estimate(q).selectivity)
        .collect();

    let installs_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Ingest worker: pushes every batch through the front door.
        {
            let (door, batches, installs_done) = (&door, &batches, &installs_done);
            s.spawn(move || {
                for batch in batches.iter() {
                    let body = serde_json::to_string(batch).expect("batch serializes");
                    let resp = door.handle(&Request::new("POST", "/v1/hot/ingest", body));
                    assert_eq!(resp.status, 200, "ingest: {}", body_str(&resp));
                    installs_done.fetch_add(1, Ordering::Release);
                }
            });
        }
        // Estimate workers race the installs on both tenants.
        for worker in 0..3usize {
            let (door, queries, cold_reference, installs_done) =
                (&door, &queries, &cold_reference, &installs_done);
            s.spawn(move || {
                let mut i = worker;
                while installs_done.load(Ordering::Acquire) < batches_len() {
                    let q = &queries[i % queries.len()];
                    // Cold tenant: epoch 0 and reference bits, always —
                    // someone else's install must never be visible here.
                    let wire = parse_estimate(&door.handle(&Request::new(
                        "POST",
                        "/v1/cold/estimate",
                        estimate_body(q, Some(5_000)),
                    )));
                    assert_eq!(wire.epoch, 0, "cold tenant saw a foreign epoch");
                    if wire.quality == "full" {
                        assert_eq!(
                            wire.selectivity.to_bits(),
                            cold_reference[i % queries.len()].to_bits(),
                            "cold tenant's answer moved during hot tenant's ingest"
                        );
                    }
                    // Hot tenant: the epoch is its own install counter —
                    // never ahead of the installs actually completed.
                    let before = installs_done.load(Ordering::Acquire);
                    let wire = parse_estimate(&door.handle(&Request::new(
                        "POST",
                        "/v1/hot/estimate",
                        estimate_body(q, Some(5_000)),
                    )));
                    let after = installs_done.load(Ordering::Acquire);
                    assert!(
                        wire.epoch >= before.min(wire.epoch) && wire.epoch <= after + 1,
                        "hot epoch {} outside install window [{before}, {after}]",
                        wire.epoch
                    );
                    i += 1;
                }
            });
        }
    });

    // Hot tenant converged: one epoch per batch, and its answers are
    // bit-identical to a clean service over a fault-free replay.
    assert_eq!(hot.service().snapshot().epoch(), batches.len() as u64);
    let mut replay = sqe::core::LiveCatalog::new(
        small_db(1),
        sqe::core::build_pool(&small_db(1), &queries, PoolSpec::ji(1)).expect("pool"),
        DeltaConfig::default(),
    );
    for batch in &batches {
        replay.ingest(batch).expect("replay ingest");
    }
    let clean = EstimationService::new(
        Arc::new(replay.db().clone()),
        replay.catalog().clone(),
        ServiceConfig::default(),
    );
    for q in &queries {
        let wire = parse_estimate(&door.handle(&Request::new(
            "POST",
            "/v1/hot/estimate",
            estimate_body(q, Some(5_000)),
        )));
        assert_eq!(
            wire.selectivity.to_bits(),
            clean.estimate(q).selectivity.to_bits(),
            "hot tenant diverged from a clean replay of its own stream"
        );
    }
    // And the cold tenant still matches its untouched catalog.
    for (q, want) in queries.iter().zip(&cold_reference) {
        let wire = parse_estimate(&door.handle(&Request::new(
            "POST",
            "/v1/cold/estimate",
            estimate_body(q, Some(5_000)),
        )));
        assert_eq!(wire.epoch, 0);
        assert_eq!(wire.selectivity.to_bits(), want.to_bits());
    }
}

/// Number of batches the isolation race drives (shared between the
/// ingest worker and the estimate workers' stop condition).
const fn batches_len() -> u64 {
    24
}

// ---------------------------------------------------------------------
// Reactor failpoints: lost requests, exact accounting
// ---------------------------------------------------------------------

/// One HTTP exchange over loopback; `None` when the connection was
/// reset/closed without a complete response (an injected loss).
fn tcp_roundtrip(addr: std::net::SocketAddr, raw: &[u8]) -> Option<String> {
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(raw).ok()?;
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok()?;
    let text = String::from_utf8(out).ok()?;
    if text.starts_with("HTTP/1.1 ") {
        Some(text)
    } else {
        None
    }
}

#[test]
fn reactor_failpoints_lose_requests_but_never_accounting() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let door = Arc::new(FrontDoor::new(2));
    let tenant = add_small_tenant(&door, "acme", 0, open_quota());
    let q = &small_queries()[0];
    let handle = sqe::server::spawn(Arc::clone(&door), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    let body = estimate_body(q, Some(5_000));
    let raw = format!(
        "POST /v1/acme/estimate HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );

    // Phase per failpoint: 16 requests at a deterministic 1-in-2 loss.
    let mut ok = [0u32; 3];
    let mut lost = [0u32; 3];
    for (i, site) in ["server::accept", "server::read", "server::respond"]
        .iter()
        .enumerate()
    {
        failpoint::arm_with(site, Action::Error, 2, None, 40 + i as u64);
        for _ in 0..16 {
            match tcp_roundtrip(addr, raw.as_bytes()) {
                Some(resp) => {
                    assert!(resp.contains("200 OK"), "head: {:?}", resp.lines().next());
                    ok[i] += 1;
                }
                None => lost[i] += 1,
            }
        }
        failpoint::disarm(site);
        assert!(ok[i] > 0, "{site}: every request lost at 1-in-2");
        assert!(lost[i] > 0, "{site}: armed failpoint never fired");
    }

    // Drain: the reactor answers cleanly again after disarming.
    for _ in 0..4 {
        let resp = tcp_roundtrip(addr, raw.as_bytes()).expect("clean after disarm");
        assert!(resp.contains("200 OK"));
    }

    let stats = Arc::clone(handle.stats());
    handle.shutdown();

    // Exact request accounting: every parsed request was either answered
    // or explicitly lost at the respond failpoint; every injected loss
    // was counted at its site.
    let requests = stats.requests.load(Ordering::Relaxed);
    let responses = stats.responses.load(Ordering::Relaxed);
    let respond_failures = stats.respond_failures.load(Ordering::Relaxed);
    let accept_failures = stats.accept_failures.load(Ordering::Relaxed);
    let read_failures = stats.read_failures.load(Ordering::Relaxed);
    let handler_panics = stats.handler_panics.load(Ordering::Relaxed);
    assert_eq!(
        requests,
        responses + respond_failures,
        "a parsed request must be answered or counted lost"
    );
    assert_eq!(handler_panics, 0);
    assert_eq!(accept_failures as u32, lost[0], "accept losses");
    assert_eq!(read_failures as u32, lost[1], "read losses");
    assert_eq!(respond_failures as u32, lost[2], "respond losses");

    // Requests that died at accept/read never reached the bucket; the
    // ones that reached dispatch are all accounted admitted (the open
    // quota refuses nothing), and both permit pools are back to idle.
    assert_eq!(tenant.bucket().admitted(), requests);
    assert_eq!(tenant.bucket().refused(), 0);
    assert_eq!(tenant.admission().in_flight(), 0, "tenant permit leaked");
    assert_eq!(
        door.global_admission().in_flight(),
        0,
        "global permit leaked"
    );
}

//! Bit-identity of the dense subset-lattice DP engine against the
//! recursive engine (the invariant the estimator rewrite is built on):
//! for random databases, catalogs, and queries, both engines return the
//! exact same `(selectivity, error)` bits for **every** predicate subset,
//! under both error modes, with and without a cross-query shared cache.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use proptest::prelude::*;

use sqe::core::failpoint::{self, Action};
use sqe::core::{BudgetMeter, FillSchedule};
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;
use sqe::service::ShardedCache;

/// Strategy: a 4-table database with 2 columns each, narrow value domain so
/// joins match and histograms are non-trivial.
fn small_db() -> impl Strategy<Value = Database> {
    prop::collection::vec(prop::collection::vec(0i64..8, 2..14), 8).prop_map(|cols| {
        let mut db = Database::new();
        for (t, pair) in cols.chunks(2).enumerate() {
            let n = pair[0].len().min(pair[1].len());
            db.add_table(
                TableBuilder::new(format!("t{t}"))
                    .column("a", pair[0][..n].to_vec())
                    .column("b", pair[1][..n].to_vec())
                    .build()
                    .expect("consistent"),
            );
        }
        db
    })
}

/// Strategy: a predicate over the 4-table schema.
fn pred() -> impl Strategy<Value = Predicate> {
    let colref = (0u32..4, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8).prop_map(|(c, lo, hi)| Predicate::range(
            c,
            lo.min(hi),
            lo.max(hi)
        )),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Le, v)),
        (colref.clone(), colref.clone()).prop_filter_map("self-column join", |(l, r)| {
            (l.table != r.table).then(|| Predicate::join(l, r))
        }),
    ]
}

/// A query from random predicates (dropping duplicates, which `SpjQuery`
/// rejects-by-merge anyway and which would make subset indexing ambiguous).
fn query() -> impl Strategy<Value = SpjQuery> {
    prop::collection::vec(pred(), 1..8).prop_filter_map("degenerate query", |mut preds| {
        preds.sort_unstable();
        preds.dedup();
        SpjQuery::from_predicates(preds).ok()
    })
}

/// Runs one engine over every non-empty subset of the query, returning the
/// raw bits of each `(sel, err)`.
fn lattice_bits(
    db: &Database,
    q: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    cache: Option<&ShardedCache>,
    pruning: bool,
) -> Vec<(u64, u64)> {
    lattice_bits_threaded(db, q, catalog, mode, strategy, cache, pruning, 1)
}

/// [`lattice_bits`] with an explicit DP thread count for the dense fill.
#[allow(clippy::too_many_arguments)]
fn lattice_bits_threaded(
    db: &Database,
    q: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    cache: Option<&ShardedCache>,
    pruning: bool,
    threads: usize,
) -> Vec<(u64, u64)> {
    lattice_bits_scheduled(
        db,
        q,
        catalog,
        mode,
        strategy,
        cache,
        pruning,
        threads,
        FillSchedule::Auto,
    )
}

/// [`lattice_bits_threaded`] with an explicit fill schedule. Forcing
/// [`FillSchedule::WorkStealing`] matters for the small proptest queries:
/// they sit below the `Auto` threshold, where `Auto` (correctly) stays
/// serial and would never exercise the scheduler.
#[allow(clippy::too_many_arguments)]
fn lattice_bits_scheduled(
    db: &Database,
    q: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    cache: Option<&ShardedCache>,
    pruning: bool,
    threads: usize,
    schedule: FillSchedule,
) -> Vec<(u64, u64)> {
    let mut est = SelectivityEstimator::new(db, q, catalog, mode)
        .with_strategy(strategy)
        .with_dp_threads(threads)
        .with_fill_schedule(schedule);
    if let Some(c) = cache {
        est = est.with_shared_cache(c);
    }
    if pruning {
        est = est.with_sit_driven_pruning();
    }
    let n = q.predicates.len();
    (1u32..(1 << n))
        .map(|mask| {
            let (s, e) = est.get_selectivity(PredSet(mask));
            (s.to_bits(), e.to_bits())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense ≡ recursive, bit for bit, across the whole subset lattice,
    /// both error modes, with and without §3.4 pruning.
    #[test]
    fn dense_engine_is_bit_identical(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let dense = lattice_bits(&db, &q, &catalog, mode, DpStrategy::Dense, None, pruning);
            let rec =
                lattice_bits(&db, &q, &catalog, mode, DpStrategy::Recursive, None, pruning);
            prop_assert_eq!(&dense, &rec, "mode {:?}", mode);
            // Auto must coincide with whichever engine it picked.
            let auto = lattice_bits(&db, &q, &catalog, mode, DpStrategy::Auto, None, pruning);
            prop_assert_eq!(&auto, &dense, "auto, mode {:?}", mode);
        }
    }

    /// Rank-parallel dense fill ≡ serial dense fill, bit for bit, across
    /// thread counts, error modes, and §3.4 pruning. Worker threads own
    /// disjoint result slots and peel links evaluate exactly once through
    /// the rank's claim-then-publish map, so scheduling cannot perturb a
    /// single bit (DESIGN.md §4e). The rank-barrier schedule is forced:
    /// under `Auto` these small components run serially.
    #[test]
    fn rank_parallel_fill_is_bit_identical(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let serial = lattice_bits(&db, &q, &catalog, mode, DpStrategy::Dense, None, pruning);
            for threads in [2, 8] {
                let par = lattice_bits_scheduled(
                    &db, &q, &catalog, mode, DpStrategy::Dense, None, pruning, threads,
                    FillSchedule::RankBarrier,
                );
                prop_assert_eq!(&par, &serial, "threads {}, mode {:?}", threads, mode);
            }
        }
    }

    /// Work-stealing fill ≡ serial ≡ rank-barrier, bit for bit, across the
    /// whole lattice at threads {2, 4, 8} — including equal memo/peel/vm
    /// instrumentation, so the *computed-key set* (not just the values) is
    /// scheduling-independent. The dependency-counted scheduler treats
    /// every subset as a node (pre-memoized masks become no-op
    /// completions), which is exactly what these cross-mask re-entries
    /// exercise: each lattice probe re-fills components whose sub-lattices
    /// are already partially memoized.
    #[test]
    fn work_stealing_fill_is_bit_identical(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let serial = lattice_bits(&db, &q, &catalog, mode, DpStrategy::Dense, None, pruning);
            for threads in [2, 4, 8] {
                let ws = lattice_bits_scheduled(
                    &db, &q, &catalog, mode, DpStrategy::Dense, None, pruning, threads,
                    FillSchedule::WorkStealing,
                );
                prop_assert_eq!(&ws, &serial, "ws threads {}, mode {:?}", threads, mode);
            }
            // Instrumentation identity on a full-set evaluation.
            let mut s_est = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Dense);
            let _ = s_est.get_selectivity(s_est.context().all());
            let mut w_est = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Dense)
                .with_dp_threads(4)
                .with_fill_schedule(FillSchedule::WorkStealing);
            let _ = w_est.get_selectivity(w_est.context().all());
            prop_assert_eq!(w_est.stats().memo_entries, s_est.stats().memo_entries);
            prop_assert_eq!(w_est.stats().peel_entries, s_est.stats().peel_entries);
            prop_assert_eq!(w_est.stats().vm_calls, s_est.stats().vm_calls);
        }
    }

    /// Same identity through a shared cross-query cache: values are pure
    /// functions of their keys, so cache warm-up from either engine (or
    /// both, interleaved) never perturbs results.
    #[test]
    fn dense_engine_is_bit_identical_with_shared_cache(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let baseline = lattice_bits(&db, &q, &catalog, mode, DpStrategy::Recursive, None, false);
            // One shared cache, warmed by the recursive engine, then read by
            // the dense engine — and a fresh cache hit cold by dense.
            let cache = ShardedCache::new(4, 1024);
            let warm =
                lattice_bits(&db, &q, &catalog, mode, DpStrategy::Recursive, Some(&cache), false);
            let dense_warm =
                lattice_bits(&db, &q, &catalog, mode, DpStrategy::Dense, Some(&cache), false);
            let cold = ShardedCache::new(4, 1024);
            let dense_cold =
                lattice_bits(&db, &q, &catalog, mode, DpStrategy::Dense, Some(&cold), false);
            prop_assert_eq!(&warm, &baseline, "recursive+cache, mode {:?}", mode);
            prop_assert_eq!(&dense_warm, &baseline, "dense on warm cache, mode {:?}", mode);
            prop_assert_eq!(&dense_cold, &baseline, "dense on cold cache, mode {:?}", mode);
        }
    }
}

/// Deterministic 12-predicate join chain with filters: large enough that
/// the full component (4096 lattice masks) crosses the work-stealing Auto
/// threshold, the regime the dense engine and its schedulers target.
fn chain_db_and_query() -> (Database, SpjQuery) {
    let mut db = Database::new();
    for t in 0..5 {
        let vals: Vec<i64> = (0..24).map(|i| (i * 7 + t * 3) % 8).collect();
        let vals2: Vec<i64> = (0..24).map(|i| (i * 5 + t * 11) % 8).collect();
        db.add_table(
            TableBuilder::new(format!("t{t}"))
                .column("a", vals)
                .column("b", vals2)
                .build()
                .unwrap(),
        );
    }
    let c = |t: u32, col: u16| ColRef::new(TableId(t), col);
    let mut preds = vec![
        Predicate::join(c(0, 1), c(1, 0)),
        Predicate::join(c(1, 1), c(2, 0)),
        Predicate::join(c(2, 1), c(3, 0)),
        Predicate::join(c(3, 1), c(4, 0)),
    ];
    for t in 0..4u32 {
        preds.push(Predicate::filter(c(t, 0), CmpOp::Le, (t as i64) + 3));
        preds.push(Predicate::range(c(t, 1), 1, (t as i64) + 4));
    }
    let q = SpjQuery::from_predicates(preds).unwrap();
    assert_eq!(q.predicates.len(), 12);
    (db, q)
}

/// Deterministic larger case (n = 12): a join chain with filters, too slow
/// to random-sample under proptest but exactly the regime the dense engine
/// targets.
#[test]
fn dense_engine_matches_recursive_at_n12() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    for mode in [ErrorMode::NInd, ErrorMode::Diff] {
        let mut dense =
            SelectivityEstimator::new(&db, &q, &catalog, mode).with_strategy(DpStrategy::Dense);
        let mut rec =
            SelectivityEstimator::new(&db, &q, &catalog, mode).with_strategy(DpStrategy::Recursive);
        let (sd, ed) = dense.get_selectivity(dense.context().all());
        let (sr, er) = rec.get_selectivity(rec.context().all());
        assert_eq!(sd.to_bits(), sr.to_bits(), "sel, mode {mode:?}");
        assert_eq!(ed.to_bits(), er.to_bits(), "err, mode {mode:?}");
        assert_eq!(
            dense.stats().memo_entries,
            rec.stats().memo_entries,
            "both engines visit the identical state set"
        );
        assert_eq!(dense.stats().peel_entries, rec.stats().peel_entries);

        // Every parallel fill (rank-barrier: C(12,6) = 924-mask ranks;
        // work-stealing: one 4096-node dependency graph; Auto: the
        // satellite heuristic, which at n = 12 engages work-stealing) must
        // reproduce the serial answer bit for bit AND the serial
        // instrumentation exactly — same memo states, same computed peel
        // links, same view-matching call count — because per-mask slots and
        // the exactly-once link map make the computed-key set, not just the
        // values, scheduling-independent.
        for schedule in [
            FillSchedule::Auto,
            FillSchedule::RankBarrier,
            FillSchedule::WorkStealing,
        ] {
            for threads in [2, 8] {
                let mut par = SelectivityEstimator::new(&db, &q, &catalog, mode)
                    .with_strategy(DpStrategy::Dense)
                    .with_dp_threads(threads)
                    .with_fill_schedule(schedule);
                let (sp, ep) = par.get_selectivity(par.context().all());
                assert_eq!(
                    sp.to_bits(),
                    sd.to_bits(),
                    "sel, {threads} threads, {schedule:?}, mode {mode:?}"
                );
                assert_eq!(
                    ep.to_bits(),
                    ed.to_bits(),
                    "err, {threads} threads, {schedule:?}, mode {mode:?}"
                );
                assert_eq!(par.stats().memo_entries, dense.stats().memo_entries);
                assert_eq!(par.stats().peel_entries, dense.stats().peel_entries);
                assert_eq!(par.stats().vm_calls, dense.stats().vm_calls);
                if schedule != FillSchedule::RankBarrier {
                    // Auto and forced WS both run the stealing fill here
                    // (4096 masks ≥ the Auto threshold), and its stats
                    // account for every lattice node exactly once.
                    let stats = par.fill_stats();
                    assert!(
                        stats.parallel_fills >= 1,
                        "{schedule:?} engaged the scheduler"
                    );
                    assert_eq!(
                        stats.tasks, 4095,
                        "every non-empty subset of the 12-predicate component is a node"
                    );
                }
            }
        }
    }
}

/// Armed `par` failpoints under the work-stealing fill: a worker panic
/// aborts the whole fill (the abort guard wakes the other workers), the
/// panic propagates to the caller, and nothing half-computed is committed —
/// a fresh estimator over the same catalog still answers bit-identically.
#[test]
fn work_stealing_fill_survives_armed_failpoints() {
    let _guard = failpoint::test_serial_guard();
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut serial = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense);
    let (ss, se) = serial.get_selectivity(serial.context().all());

    for site in ["par::publish", "dp::solve_mask"] {
        failpoint::arm_with(site, Action::Panic, 64, None, 7);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
                .with_strategy(DpStrategy::Dense)
                .with_dp_threads(4)
                .with_fill_schedule(FillSchedule::WorkStealing);
            est.get_selectivity(est.context().all())
        }));
        failpoint::disarm(site);
        if let Ok((s, e)) = outcome {
            // The 1-in-64 trigger happened to never fire: the answer must
            // still be exact.
            assert_eq!(s.to_bits(), ss.to_bits(), "{site}: survived arm");
            assert_eq!(e.to_bits(), se.to_bits(), "{site}: survived arm");
        }
        // Whatever happened above, a fresh estimator is unpolluted.
        let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense)
            .with_dp_threads(4)
            .with_fill_schedule(FillSchedule::WorkStealing);
        let (fs, fe) = fresh.get_selectivity(fresh.context().all());
        assert_eq!(fs.to_bits(), ss.to_bits(), "{site}: fresh after chaos");
        assert_eq!(fe.to_bits(), se.to_bits(), "{site}: fresh after chaos");
    }
}

/// Mid-fill budget cancellation: a quota sized to trip halfway through the
/// fill makes the work-stealing engine abort and surface the reason
/// (committing nothing), and a fresh unlimited estimator still answers
/// bit-identically. Serial and stealing fills may disagree only on *where*
/// the trip surfaces (a serial fill can trip exactly at a fill boundary and
/// still return its completed answer), so an `Ok` is accepted iff it is the
/// exact answer.
#[test]
fn work_stealing_budget_trip_aborts_cleanly() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut serial = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense);
    let (ss, se) = serial.get_selectivity(serial.context().all());

    // Measure the full cost, then grant half.
    let gauge = Arc::new(BudgetMeter::start(&Budget::unlimited()));
    let mut measured = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_budget_meter(Arc::clone(&gauge));
    measured
        .try_get_selectivity(measured.context().all())
        .expect("unlimited meter cannot trip");
    let quota = (gauge.spent() / 2).max(1);

    let tight = Arc::new(BudgetMeter::start(&Budget::unlimited().with_quota(quota)));
    let mut ws = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_dp_threads(4)
        .with_fill_schedule(FillSchedule::WorkStealing)
        .with_budget_meter(Arc::clone(&tight));
    match ws.try_get_selectivity(ws.context().all()) {
        Err(_) => {
            assert!(tight.tripped().is_some(), "error implies a tripped meter");
        }
        Ok((s, e)) => {
            assert_eq!(s.to_bits(), ss.to_bits(), "boundary Ok must be exact");
            assert_eq!(e.to_bits(), se.to_bits(), "boundary Ok must be exact");
        }
    }

    // The aborted fill committed nothing it shouldn't have: re-running the
    // same estimator family fresh and unlimited is bit-identical.
    let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_dp_threads(4)
        .with_fill_schedule(FillSchedule::WorkStealing);
    let (fs, fe) = fresh.get_selectivity(fresh.context().all());
    assert_eq!(fs.to_bits(), ss.to_bits());
    assert_eq!(fe.to_bits(), se.to_bits());
}

//! Cross-crate integration tests: the full pipeline from data generation
//! through pools, estimation, and the optimizer.

use sqe::prelude::*;

fn small_setup() -> (Snowflake, Vec<SpjQuery>) {
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.002,
        min_rows: 100,
        ..Default::default()
    });
    let wl = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 6,
            joins: 3,
            ..Default::default()
        },
    );
    (sf, wl)
}

#[test]
fn pipeline_produces_usable_estimates_for_all_techniques() {
    let (sf, wl) = small_setup();
    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(2)).unwrap();
    let mut oracle = CardinalityOracle::new(&sf.db);
    for q in &wl {
        let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap() as f64;
        for mode in [ErrorMode::NInd, ErrorMode::Diff, ErrorMode::Opt] {
            let mut est = SelectivityEstimator::new(&sf.db, q, &pool, mode);
            let all = est.context().all();
            let card = est.cardinality(all);
            assert!(card.is_finite() && card >= 0.0, "{mode:?}");
            // Estimates live within a broad sanity corridor of the truth.
            let cross = q.cross_product_size(&sf.db).unwrap() as f64;
            assert!(card <= cross, "{mode:?}: estimate above cross product");
            let _ = truth;
        }
        let mut gvm = GreedyViewMatching::new(&sf.db, q, &pool);
        let all = gvm.context().all();
        assert!(gvm.cardinality(all).is_finite());
    }
}

#[test]
fn sits_improve_over_base_statistics_on_workload_average() {
    let (sf, wl) = small_setup();
    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(3)).unwrap();
    let nosit = NoSitEstimator::from_catalog(&pool);
    let mut oracle = CardinalityOracle::new(&sf.db);
    // The §5 metric: average absolute error over every sub-query.
    let (mut err_base, mut err_sits) = (0.0f64, 0.0f64);
    for q in &wl {
        let ctx = QueryContext::new(&sf.db, q);
        let mut base = nosit.estimator(&sf.db, q);
        let mut sit = SelectivityEstimator::new(&sf.db, q, &pool, ErrorMode::Diff);
        for p in ctx.all().subsets() {
            let truth = oracle
                .cardinality(&ctx.tables_of(p), &ctx.predicates_of(p))
                .unwrap() as f64;
            err_base += (base.cardinality(p) - truth).abs();
            err_sits += (sit.cardinality(p) - truth).abs();
        }
    }
    assert!(
        err_sits < err_base,
        "SITs ({err_sits}) must beat base stats ({err_base})"
    );
}

#[test]
fn estimator_answers_every_subquery_consistently() {
    let (sf, wl) = small_setup();
    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(2)).unwrap();
    let q = &wl[0];
    let mut est = SelectivityEstimator::new(&sf.db, q, &pool, ErrorMode::Diff);
    let all = est.context().all();
    // Selectivity is a probability, monotone under adding predicates along
    // chains: Sel(P) <= Sel(P') for P' ⊆ P does NOT hold for arbitrary
    // estimates, but bounds do.
    for p in all.subsets() {
        let (sel, err) = est.get_selectivity(p);
        assert!((0.0..=1.0).contains(&sel), "{p}: sel {sel}");
        assert!(err >= 0.0 && err.is_finite());
        // Deterministic: asking twice yields the identical answer.
        assert_eq!(est.get_selectivity(p), (sel, err));
    }
}

#[test]
fn optimizer_pipeline_extracts_valid_plans() {
    let (sf, wl) = small_setup();
    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(2)).unwrap();
    let mut oracle = CardinalityOracle::new(&sf.db);
    for q in &wl {
        let mut memo = Memo::new(&sf.db, q);
        explore(&mut memo);
        let mut est = MemoEstimator::new(&sf.db, q, &pool, ErrorMode::Diff);
        est.estimate_memo(&memo);
        let (plan, cost) = extract_best_plan(&memo, &est).expect("plan extracted");
        assert_eq!(
            plan.preds(),
            memo.context().all(),
            "plan applies all predicates"
        );
        assert!(cost.is_finite() && cost > 0.0);
        let true_cost = sqe::optimizer::evaluate_true_cost(&memo, &mut oracle, &plan).unwrap();
        assert!(true_cost > 0.0);
    }
}

#[test]
fn motivating_scenario_reproduces_figure_1_and_2_ordering() {
    let s = motivating_scenario(Default::default());
    let db = &s.db;
    let q = &s.query;
    let mut oracle = CardinalityOracle::new(db);
    let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap() as f64;

    let mut base = SitCatalog::new();
    for p in &q.predicates {
        for col in p.columns().iter() {
            base.add(Sit::build_base(db, col).unwrap());
        }
    }
    let sit_price = Sit::build(db, s.col_price, vec![s.join_lo]).unwrap();
    let sit_nation = Sit::build(db, s.col_nation, vec![s.join_oc]).unwrap();
    let mut both = base.clone();
    both.add(sit_price.clone());
    both.add(sit_nation.clone());
    let mut price_only = base.clone();
    price_only.add(sit_price);

    let est = |cat: &SitCatalog| {
        let mut e = SelectivityEstimator::new(db, q, cat, ErrorMode::Diff);
        let all = e.context().all();
        e.cardinality(all)
    };
    let e_base = est(&base);
    let e_price = est(&price_only);
    let e_both = est(&both);

    // noSit underestimates badly; one SIT helps; both SITs help most.
    assert!(e_base < 0.2 * truth, "noSit {e_base} vs truth {truth}");
    assert!((e_price - truth).abs() < (e_base - truth).abs());
    assert!((e_both - truth).abs() < (e_price - truth).abs());

    // View matching (GVM) cannot beat single-SIT accuracy: the two SITs
    // overlap without nesting.
    let mut gvm = GreedyViewMatching::new(db, q, &both);
    let all = gvm.context().all();
    let e_gvm = gvm.cardinality(all);
    assert!(
        (e_both - truth).abs() < (e_gvm - truth).abs(),
        "getSelectivity ({e_both}) must beat GVM ({e_gvm}); truth {truth}"
    );
}

#[test]
fn pool_sizes_grow_and_are_bounded() {
    let (sf, wl) = small_setup();
    let mut prev = 0usize;
    for i in 0..=3 {
        let pool = build_pool(&sf.db, &wl, PoolSpec::ji(i)).unwrap();
        assert!(pool.len() >= prev, "pool J{i} shrank");
        prev = pool.len();
        for (_, sit) in pool.iter() {
            assert!(sit.cond.len() <= i, "SIT exceeds pool bound: {sit}");
            assert!((0.0..=1.0).contains(&sit.diff));
        }
    }
}

#[test]
fn base_histograms_reproduce_base_table_counts() {
    let (sf, _) = small_setup();
    for &col in sf.filter_columns.iter().take(6) {
        let sit = Sit::build_base(&sf.db, col).unwrap();
        let column = sf.db.column(col).unwrap();
        let expected = (column.len() - column.null_count()) as f64;
        assert!(
            (sit.histogram.valid_rows() - expected).abs() < 1e-6,
            "histogram mass mismatch for {col}"
        );
    }
}

//! Beam-search engine guarantees: at unbounded width the beam engine is
//! **bit-identical** to the exact recursive engine — values *and*
//! instrumentation (memo / peel / view-matching counts) — across the whole
//! subset lattice, under armed failpoints, and under budget cancellation;
//! at bounded width it answers in range and reports its work through
//! [`BeamStats`]; and the acceptance headline — a seeded 32-predicate
//! query answers with [`Quality::Beam`] under the service's **default
//! deadline** instead of falling off the exact engines' `O(3ⁿ)` cliff.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Instant;

use proptest::prelude::*;

use sqe::core::failpoint::{self, Action};
use sqe::core::BudgetMeter;
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;
use sqe::service::{EstimationService, ServiceConfig};

/// Strategy: a 4-table database with 2 columns each, narrow value domain so
/// joins match and histograms are non-trivial (tests/dense_engine.rs's
/// generator, reused so the beam anchor covers the same query space).
fn small_db() -> impl Strategy<Value = Database> {
    prop::collection::vec(prop::collection::vec(0i64..8, 2..14), 8).prop_map(|cols| {
        let mut db = Database::new();
        for (t, pair) in cols.chunks(2).enumerate() {
            let n = pair[0].len().min(pair[1].len());
            db.add_table(
                TableBuilder::new(format!("t{t}"))
                    .column("a", pair[0][..n].to_vec())
                    .column("b", pair[1][..n].to_vec())
                    .build()
                    .expect("consistent"),
            );
        }
        db
    })
}

/// Strategy: a predicate over the 4-table schema.
fn pred() -> impl Strategy<Value = Predicate> {
    let colref = (0u32..4, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8).prop_map(|(c, lo, hi)| Predicate::range(
            c,
            lo.min(hi),
            lo.max(hi)
        )),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Le, v)),
        (colref.clone(), colref.clone()).prop_filter_map("self-column join", |(l, r)| {
            (l.table != r.table).then(|| Predicate::join(l, r))
        }),
    ]
}

/// A query from random predicates (dropping duplicates, which would make
/// subset indexing ambiguous).
fn query() -> impl Strategy<Value = SpjQuery> {
    prop::collection::vec(pred(), 1..8).prop_filter_map("degenerate query", |mut preds| {
        preds.sort_unstable();
        preds.dedup();
        SpjQuery::from_predicates(preds).ok()
    })
}

/// Runs one engine over every non-empty subset of the query, returning the
/// raw bits of each `(sel, err)`.
fn lattice_bits(
    db: &Database,
    q: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    beam: BeamConfig,
    pruning: bool,
) -> Vec<(u64, u64)> {
    let mut est = SelectivityEstimator::new(db, q, catalog, mode)
        .with_strategy(strategy)
        .with_beam_config(beam);
    if pruning {
        est = est.with_sit_driven_pruning();
    }
    let n = q.predicates.len();
    (1u32..(1 << n))
        .map(|mask| {
            let (s, e) = est.get_selectivity(PredSet(mask));
            (s.to_bits(), e.to_bits())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Beam at unbounded width ≡ recursive, bit for bit, across the whole
    /// subset lattice, both error modes, with and without §3.4 pruning —
    /// plus identical instrumentation on a full-set evaluation (memo
    /// states, peel links, view-matching calls), so the unbounded beam
    /// visits exactly the exact engine's state set, in its order.
    #[test]
    fn unbounded_beam_is_bit_identical_to_recursive(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let beam = lattice_bits(
                &db, &q, &catalog, mode, DpStrategy::Beam, BeamConfig::UNBOUNDED, pruning,
            );
            let rec = lattice_bits(
                &db, &q, &catalog, mode, DpStrategy::Recursive, BeamConfig::UNBOUNDED, pruning,
            );
            prop_assert_eq!(&beam, &rec, "mode {:?}", mode);

            // Instrumentation identity on a fresh full-set evaluation.
            let mut b_est = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Beam)
                .with_beam_config(BeamConfig::UNBOUNDED);
            let _ = b_est.get_selectivity(b_est.context().all());
            let mut r_est = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Recursive);
            let _ = r_est.get_selectivity(r_est.context().all());
            prop_assert_eq!(b_est.stats().memo_entries, r_est.stats().memo_entries);
            prop_assert_eq!(b_est.stats().peel_entries, r_est.stats().peel_entries);
            prop_assert_eq!(b_est.stats().vm_calls, r_est.stats().vm_calls);
        }
    }

    /// The dense engine agrees too: unbounded beam ≡ dense values on the
    /// lattice, so all three engines pin one another.
    #[test]
    fn unbounded_beam_matches_dense_values(
        db in small_db(),
        q in query(),
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1))
            .expect("pool build");
        let beam = lattice_bits(
            &db, &q, &catalog, ErrorMode::Diff, DpStrategy::Beam, BeamConfig::UNBOUNDED, pruning,
        );
        let dense = lattice_bits(
            &db, &q, &catalog, ErrorMode::Diff, DpStrategy::Dense, BeamConfig::UNBOUNDED, pruning,
        );
        prop_assert_eq!(&beam, &dense);
    }

    /// Bounded beam stays honest on random queries: every lattice answer
    /// is a finite selectivity in `[0, 1]` with a non-negative error, at
    /// the default width and at the narrowest one.
    #[test]
    fn bounded_beam_answers_stay_in_range(
        db in small_db(),
        q in query(),
        width in 0usize..3,
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1))
            .expect("pool build");
        let cfg = BeamConfig { width, expansions_cap: 64 };
        let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
            .with_strategy(DpStrategy::Beam)
            .with_beam_config(cfg);
        let n = q.predicates.len();
        for mask in 1u32..(1 << n) {
            let (s, e) = est.get_selectivity(PredSet(mask));
            prop_assert!(s.is_finite() && (0.0..=1.0).contains(&s), "sel {} at {:#b}", s, mask);
            prop_assert!(e >= 0.0, "err {} at {:#b}", e, mask);
        }
    }
}

/// Deterministic 12-predicate join chain with filters (the dense-engine
/// regression case, reused as the beam anchor at a width the proptest
/// generator cannot reach).
fn chain_db_and_query() -> (Database, SpjQuery) {
    let mut db = Database::new();
    for t in 0..5 {
        let vals: Vec<i64> = (0..24).map(|i| (i * 7 + t * 3) % 8).collect();
        let vals2: Vec<i64> = (0..24).map(|i| (i * 5 + t * 11) % 8).collect();
        db.add_table(
            TableBuilder::new(format!("t{t}"))
                .column("a", vals)
                .column("b", vals2)
                .build()
                .unwrap(),
        );
    }
    let c = |t: u32, col: u16| ColRef::new(TableId(t), col);
    let mut preds = vec![
        Predicate::join(c(0, 1), c(1, 0)),
        Predicate::join(c(1, 1), c(2, 0)),
        Predicate::join(c(2, 1), c(3, 0)),
        Predicate::join(c(3, 1), c(4, 0)),
    ];
    for t in 0..4u32 {
        preds.push(Predicate::filter(c(t, 0), CmpOp::Le, (t as i64) + 3));
        preds.push(Predicate::range(c(t, 1), 1, (t as i64) + 4));
    }
    let q = SpjQuery::from_predicates(preds).unwrap();
    assert_eq!(q.predicates.len(), 12);
    (db, q)
}

/// n = 12 deterministic anchor: unbounded beam ≡ recursive on values and
/// every instrumentation counter; the bounded default-width beam answers
/// in range and its [`BeamStats`] account for the pruning it did.
#[test]
fn beam_matches_recursive_at_n12_and_reports_bounded_work() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    for mode in [ErrorMode::NInd, ErrorMode::Diff] {
        let mut rec =
            SelectivityEstimator::new(&db, &q, &catalog, mode).with_strategy(DpStrategy::Recursive);
        let (sr, er) = rec.get_selectivity(rec.context().all());

        let mut unbounded = SelectivityEstimator::new(&db, &q, &catalog, mode)
            .with_strategy(DpStrategy::Beam)
            .with_beam_config(BeamConfig::UNBOUNDED);
        assert!(unbounded.is_beam());
        let (su, eu) = unbounded.get_selectivity(unbounded.context().all());
        assert_eq!(su.to_bits(), sr.to_bits(), "sel, mode {mode:?}");
        assert_eq!(eu.to_bits(), er.to_bits(), "err, mode {mode:?}");
        assert_eq!(unbounded.stats().memo_entries, rec.stats().memo_entries);
        assert_eq!(unbounded.stats().peel_entries, rec.stats().peel_entries);
        assert_eq!(unbounded.stats().vm_calls, rec.stats().vm_calls);
        let st = unbounded.beam_stats();
        assert!(st.expansions > 0, "the full set is non-separable");
        assert_eq!(st.pruned, 0, "unbounded width never drops a candidate");
        assert_eq!(st.cap_fallbacks, 0);

        // Bounded beam: in-range answer, strictly less exploration, and
        // observable selection pressure.
        let mut bounded = SelectivityEstimator::new(&db, &q, &catalog, mode)
            .with_strategy(DpStrategy::Beam)
            .with_beam_config(BeamConfig::default());
        let (sb, eb) = bounded.get_selectivity(bounded.context().all());
        assert!(sb.is_finite() && (0.0..=1.0).contains(&sb));
        assert!(eb.is_finite() && eb >= 0.0);
        let bs = bounded.beam_stats().clone();
        assert!(bs.expansions > 0);
        assert!(bs.generated >= bs.scored, "pruning only removes candidates");
        assert!(
            bounded.stats().memo_entries <= unbounded.stats().memo_entries,
            "the bounded frontier visits a subset of the exact state space"
        );
        if let Some(t) = bs.bound_tightness() {
            assert!((0.0..=1.0).contains(&t), "tightness {t} out of range");
        }
    }
}

/// The serial-only engines raise [`sqe::core::FillStats::dp_threads_ignored`]
/// when asked for DP parallelism they cannot use, instead of silently
/// dropping the knob (the historical `Recursive` behavior).
#[test]
fn serial_engines_flag_ignored_dp_threads() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    for strategy in [DpStrategy::Recursive, DpStrategy::Beam] {
        let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
            .with_strategy(strategy)
            .with_dp_threads(4);
        let _ = est.get_selectivity(est.context().all());
        assert_eq!(
            est.fill_stats().dp_threads_ignored,
            1,
            "{strategy:?} must surface the ignored knob"
        );
    }
    // The dense engine honors the knob, so the flag stays clear.
    let mut dense = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_dp_threads(4);
    let _ = dense.get_selectivity(dense.context().all());
    assert_eq!(dense.fill_stats().dp_threads_ignored, 0);
}

/// Armed `dp::solve_mask` failpoints under the beam walk: a panic either
/// propagates cleanly (nothing half-committed) or never fires — and then
/// the answer must still be bit-exact. A fresh estimator afterwards is
/// unpolluted either way.
#[test]
fn beam_survives_armed_failpoints() {
    let _guard = failpoint::test_serial_guard();
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut serial = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Recursive);
    let (ss, se) = serial.get_selectivity(serial.context().all());

    failpoint::arm_with("dp::solve_mask", Action::Panic, 64, None, 7);
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
            .with_strategy(DpStrategy::Beam)
            .with_beam_config(BeamConfig::UNBOUNDED);
        est.get_selectivity(est.context().all())
    }));
    failpoint::disarm("dp::solve_mask");
    if let Ok((s, e)) = outcome {
        assert_eq!(s.to_bits(), ss.to_bits(), "survived arm must be exact");
        assert_eq!(e.to_bits(), se.to_bits(), "survived arm must be exact");
    }
    let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Beam)
        .with_beam_config(BeamConfig::UNBOUNDED);
    let (fs, fe) = fresh.get_selectivity(fresh.context().all());
    assert_eq!(fs.to_bits(), ss.to_bits(), "fresh after chaos");
    assert_eq!(fe.to_bits(), se.to_bits(), "fresh after chaos");
}

/// Mid-walk budget cancellation: a quota sized to trip halfway through
/// makes the beam engine abort with the sticky reason (committing nothing
/// wrong), and an `Ok` at the boundary is accepted iff bit-exact.
#[test]
fn beam_budget_trip_aborts_cleanly() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut serial = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Recursive);
    let (ss, se) = serial.get_selectivity(serial.context().all());

    // Measure the full cost under the beam engine, then grant half.
    let gauge = Arc::new(BudgetMeter::start(&Budget::unlimited()));
    let mut measured = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Beam)
        .with_beam_config(BeamConfig::UNBOUNDED)
        .with_budget_meter(Arc::clone(&gauge));
    measured
        .try_get_selectivity(measured.context().all())
        .expect("unlimited meter cannot trip");
    let quota = (gauge.spent() / 2).max(1);

    let tight = Arc::new(BudgetMeter::start(&Budget::unlimited().with_quota(quota)));
    let mut beam = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Beam)
        .with_beam_config(BeamConfig::UNBOUNDED)
        .with_budget_meter(Arc::clone(&tight));
    match beam.try_get_selectivity(beam.context().all()) {
        Err(_) => {
            assert!(tight.tripped().is_some(), "error implies a tripped meter");
        }
        Ok((s, e)) => {
            assert_eq!(s.to_bits(), ss.to_bits(), "boundary Ok must be exact");
            assert_eq!(e.to_bits(), se.to_bits(), "boundary Ok must be exact");
        }
    }

    // The aborted walk committed nothing it shouldn't have.
    let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Beam)
        .with_beam_config(BeamConfig::UNBOUNDED);
    let (fs, fe) = fresh.get_selectivity(fresh.context().all());
    assert_eq!(fs.to_bits(), ss.to_bits());
    assert_eq!(fe.to_bits(), se.to_bits());
}

/// **Acceptance headline.** A seeded 32-predicate query (7 joins + 25
/// filters over the snowflake) answered through the service's budgeted
/// endpoint under [`EstimationService::default_budget`] — the default
/// deadline — returns [`Quality::Beam`] with no degradation: the Auto
/// strategy routes the width to the beam engine and the beam finishes
/// inside its rung's slice of the deadline, where the exact engines'
/// `O(3ⁿ)` walk would blow through it by orders of magnitude.
#[test]
fn seeded_n32_query_answers_beam_under_default_deadline() {
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.002,
        min_rows: 100,
        ..Default::default()
    });
    let wl = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 1,
            joins: 7,
            filters: 25,
            target_selectivity: 0.5,
            seed: 0xBEE5,
            ..Default::default()
        },
    );
    let query = &wl[0];
    assert_eq!(query.predicates.len(), 32);

    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(2)).unwrap();
    let db = Arc::new(sf.db);
    let svc = EstimationService::new(db, pool, ServiceConfig::default());

    let start = Instant::now();
    let got = svc
        .estimate_with_budget(query, &svc.default_budget())
        .expect("no admission pressure from a single caller");
    let elapsed = start.elapsed();

    assert_eq!(
        got.quality,
        Quality::Beam,
        "n = 32 must route to the beam engine and finish its rung \
         (degraded to {:?} after {elapsed:?})",
        got.degraded_reason
    );
    assert_eq!(got.degraded_reason, None, "no rung was abandoned");
    assert!(
        got.selectivity.is_finite() && (0.0..=1.0).contains(&got.selectivity),
        "selectivity {}",
        got.selectivity
    );
    assert!(got.cardinality >= 0.0 && got.cardinality.is_finite());
    // Wall-clock sanity: rung deadlines are slices of the 250 ms default
    // budget plus bounded epilogues; anything near the exact engines'
    // runtime means the deadline was ignored.
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "beam answer took {elapsed:?}"
    );
}

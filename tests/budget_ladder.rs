//! Budgeted estimation and the graceful-degradation ladder: monotonicity
//! of the quality label, bit-identity guarantees, and the headline
//! robustness property — a hard query under a 1 ms deadline still returns
//! a labeled answer immediately.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use sqe::core::baseline::independence_selectivity;
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;

/// Base SITs over every column of `db`, the minimum catalog every
/// estimator path accepts.
fn base_catalog(db: &Database, tables: u32, cols: u16) -> SitCatalog {
    let mut cat = SitCatalog::new();
    for t in 0..tables {
        for c in 0..cols {
            cat.add(Sit::build_base(db, ColRef::new(TableId(t), c)).unwrap());
        }
    }
    cat
}

/// Strategy: a small 3-table database (2 columns each, narrow domain).
fn small_db() -> impl Strategy<Value = Database> {
    let col = prop::collection::vec(0i64..8, 1..12);
    (
        col.clone(),
        col.clone(),
        col.clone(),
        col.clone(),
        col.clone(),
        col,
    )
        .prop_map(|(a0, b0, a1, b1, a2, b2)| {
            fn tab(name: &str, a: Vec<i64>, b: Vec<i64>) -> sqe::engine::Table {
                let n = a.len().min(b.len());
                TableBuilder::new(name)
                    .column("a", a[..n].to_vec())
                    .column("b", b[..n].to_vec())
                    .build()
                    .expect("consistent")
            }
            let mut db = Database::new();
            db.add_table(tab("t0", a0, b0));
            db.add_table(tab("t1", a1, b1));
            db.add_table(tab("t2", a2, b2));
            db
        })
}

/// Strategy: a predicate over the 3-table schema.
fn pred() -> impl Strategy<Value = Predicate> {
    let colref = (0u32..3, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8).prop_map(|(c, lo, hi)| Predicate::range(
            c,
            lo.min(hi),
            lo.max(hi)
        )),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), colref.clone()).prop_filter_map("self-column join", |(l, r)| {
            (l != r).then(|| Predicate::join(l, r))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quality is monotone in the work quota: a tighter budget never
    /// yields a *higher* rung than a looser one. Uses quota only (no
    /// deadline — wall-clock is nondeterministic) and a serial DP fill.
    #[test]
    fn quality_is_monotone_in_quota(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..5),
        q1 in 0u64..256,
        extra in 0u64..256,
    ) {
        let query = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        let catalog = base_catalog(&db, 3, 2);
        let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);
        let tight = ladder.estimate(&query, &Budget::unlimited().with_quota(q1));
        let loose = ladder.estimate(&query, &Budget::unlimited().with_quota(q1 + extra));
        prop_assert!(
            tight.quality <= loose.quality,
            "quota {} gave {:?} but quota {} gave {:?}",
            q1, tight.quality, q1 + extra, loose.quality
        );
    }

    /// The independence floor is exactly `baseline::independence_selectivity`
    /// — bit for bit. A pre-cancelled token forces the floor deterministically.
    #[test]
    fn independence_floor_matches_baseline_bitwise(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..5),
    ) {
        let query = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        let catalog = base_catalog(&db, 3, 2);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);
        let got = ladder.estimate(&query, &Budget::unlimited().with_cancel(cancel));
        prop_assert_eq!(got.quality, Quality::Independence);
        prop_assert_eq!(got.degraded_reason, Some(DegradeReason::Cancelled));
        let expected = independence_selectivity(&db, &catalog, &query);
        prop_assert_eq!(got.selectivity.to_bits(), expected.to_bits());
    }

    /// An unlimited budget is bit-identical to calling the estimator
    /// directly — selectivity, error, and the deterministic work counters.
    #[test]
    fn unlimited_budget_is_bit_identical_to_direct_estimator(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..5),
    ) {
        let query = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        let catalog = base_catalog(&db, 3, 2);

        let mut direct = SelectivityEstimator::new(&db, &query, &catalog, ErrorMode::Diff);
        let all = direct.context().all();
        let (sel, err) = direct.get_selectivity(all);

        let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);
        let got = ladder.estimate(&query, &Budget::unlimited());
        prop_assert_eq!(got.quality, Quality::Full);
        prop_assert_eq!(got.degraded_reason, None);
        prop_assert_eq!(got.work, 0, "unlimited fast path skips accounting");
        prop_assert_eq!(got.selectivity.to_bits(), sel.to_bits());
        prop_assert_eq!(got.error.unwrap().to_bits(), err.to_bits());
        let d = direct.stats();
        prop_assert_eq!(got.stats.memo_entries, d.memo_entries);
        prop_assert_eq!(got.stats.peel_entries, d.peel_entries);
        prop_assert_eq!(got.stats.vm_calls, d.vm_calls);
    }

    /// A generous *finite* quota still completes the full rung and is
    /// bit-identical to the unlimited run (budget checkpoints never
    /// perturb the computed values).
    #[test]
    fn generous_quota_stays_full_and_bit_identical(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..4),
    ) {
        let query = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        let catalog = base_catalog(&db, 3, 2);
        let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);
        let unlimited = ladder.estimate(&query, &Budget::unlimited());
        let generous = ladder.estimate(&query, &Budget::unlimited().with_quota(1 << 20));
        prop_assert_eq!(generous.quality, Quality::Full);
        prop_assert_eq!(generous.selectivity.to_bits(), unlimited.selectivity.to_bits());
        prop_assert_eq!(
            generous.error.unwrap().to_bits(),
            unlimited.error.unwrap().to_bits()
        );
        prop_assert!(generous.work > 0, "metered run accounts its work");
    }
}

/// A single-table query whose 16 mutually non-separable predicates make
/// the dense 2^16-mask DP far too expensive for a millisecond deadline.
fn hard_query() -> (Database, SpjQuery) {
    let n = 16u16;
    let rows = 512usize;
    let mut builder = TableBuilder::new("wide");
    for c in 0..n {
        let vals: Vec<i64> = (0..rows)
            .map(|r| ((r as i64).wrapping_mul(0x9E37 + c as i64 * 7)) % 97)
            .collect();
        builder = builder.column(&format!("c{c}"), vals);
    }
    let mut db = Database::new();
    db.add_table(builder.build().unwrap());
    let preds: Vec<Predicate> = (0..n)
        .map(|c| Predicate::range(ColRef::new(TableId(0), c), 5, 60 + (c as i64 % 20)))
        .collect();
    let query = SpjQuery::new(vec![TableId(0)], preds).unwrap();
    (db, query)
}

/// The acceptance headline: a 16-predicate query under a 1 ms deadline
/// returns a *labeled degraded* answer, quickly, instead of blocking for
/// the full 2^16 DP.
#[test]
fn hard_query_under_1ms_deadline_degrades_quickly() {
    let (db, query) = hard_query();
    let catalog = base_catalog(&db, 1, 16);
    let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);

    let start = Instant::now();
    let got = ladder.estimate(
        &query,
        &Budget::unlimited().with_deadline(Duration::from_millis(1)),
    );
    let elapsed = start.elapsed();

    assert!(
        got.quality < Quality::Full,
        "must degrade, got {:?}",
        got.quality
    );
    assert_eq!(got.degraded_reason, Some(DegradeReason::Deadline));
    assert!(got.selectivity.is_finite() && (0.0..=1.0).contains(&got.selectivity));
    // Generous bound: rung deadlines sum to ~1 ms plus per-rung epilogues;
    // anything near the full DP's runtime means the deadline was ignored.
    assert!(
        elapsed < Duration::from_secs(2),
        "degraded answer took {elapsed:?}"
    );
}

/// The same hard query cancelled mid-flight from another thread unblocks
/// promptly with the `Cancelled` reason.
#[test]
fn cancellation_from_another_thread_unblocks_the_dp() {
    let (db, query) = hard_query();
    let catalog = base_catalog(&db, 1, 16);
    let cancel = CancelToken::new();

    let canceller = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel.cancel();
        })
    };

    let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(2);
    let start = Instant::now();
    let got = ladder.estimate(&query, &Budget::unlimited().with_cancel(cancel));
    let elapsed = start.elapsed();
    canceller.join().unwrap();

    assert!(got.quality < Quality::Full);
    assert_eq!(got.degraded_reason, Some(DegradeReason::Cancelled));
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation took {elapsed:?} to take effect"
    );
}

/// Work-quota exhaustion walks the ladder rung by rung: a tiny quota
/// lands below `Pruned`, a huge one stays `Full`, and the reason is
/// always `WorkQuota`.
#[test]
fn quota_exhaustion_reports_work_quota_reason() {
    let (db, query) = hard_query();
    let catalog = base_catalog(&db, 1, 16);
    let ladder = Ladder::new(&db, &catalog, ErrorMode::Diff).with_dp_threads(1);

    let tiny = ladder.estimate(&query, &Budget::unlimited().with_quota(64));
    assert!(tiny.quality < Quality::Full);
    assert_eq!(tiny.degraded_reason, Some(DegradeReason::WorkQuota));
    assert!(tiny.work <= 64 + 2, "spent {} against quota 64", tiny.work);
}

//! Differential tests for the pluggable atomic-estimate backends.
//!
//! The [`sqe::core::SelectivityBackend`] seam refactored the peel path of
//! every DP engine; this file holds the refactor to its two contracts:
//!
//! * **bit-identity of the default** — an estimator handed an explicit
//!   [`DiffBackend`] is indistinguishable from one built before the trait
//!   existed: same `(selectivity, error)` bits over the whole subset
//!   lattice *and* the same memo/peel/view-matching instrumentation,
//!   across Dense/Recursive/Beam engines, thread counts {1, 2, 8}, armed
//!   failpoints, and budget cancellation;
//! * **engine-independence of every backend** — the BN backend intercepts
//!   peels, so Dense and Recursive must still agree bit for bit with it
//!   installed;
//! * **soundness of the pessimistic backend** — `upper_bound` dominates
//!   the true cardinality on every seeded oracle scenario (truth from the
//!   independent [`ExactExecutor`]), including the dangling-FK scenario
//!   and mutation-drained databases.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use proptest::prelude::*;

use sqe::core::failpoint::{self, Action};
use sqe::core::{
    BnBackend, BnCatalog, BoundSketch, BudgetMeter, DiffBackend, PessimisticBackend,
    SelectivityBackend,
};
use sqe::datagen::{generate_mutations, MutationConfig};
use sqe::engine::table::TableBuilder;
use sqe::oracle::{scenarios, ExactExecutor, OracleTier};
use sqe::prelude::*;

/// Strategy: a 4-table database with 2 columns each, narrow value domain so
/// joins match, histograms are non-trivial, and column pairs carry enough
/// spurious mutual information that the BN backend actually intercepts.
fn small_db() -> impl Strategy<Value = Database> {
    prop::collection::vec(prop::collection::vec(0i64..8, 2..14), 8).prop_map(|cols| {
        let mut db = Database::new();
        for (t, pair) in cols.chunks(2).enumerate() {
            let n = pair[0].len().min(pair[1].len());
            db.add_table(
                TableBuilder::new(format!("t{t}"))
                    .column("a", pair[0][..n].to_vec())
                    .column("b", pair[1][..n].to_vec())
                    .build()
                    .expect("consistent"),
            );
        }
        db
    })
}

/// Strategy: a predicate over the 4-table schema, biased toward filters so
/// same-table conjunctions (the BN interception shape) are common.
fn pred() -> impl Strategy<Value = Predicate> {
    let colref = (0u32..4, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8).prop_map(|(c, lo, hi)| Predicate::range(
            c,
            lo.min(hi),
            lo.max(hi)
        )),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Le, v)),
        (colref.clone(), colref.clone()).prop_filter_map("self-column join", |(l, r)| {
            (l.table != r.table).then(|| Predicate::join(l, r))
        }),
    ]
}

fn query() -> impl Strategy<Value = SpjQuery> {
    prop::collection::vec(pred(), 1..8).prop_filter_map("degenerate query", |mut preds| {
        preds.sort_unstable();
        preds.dedup();
        SpjQuery::from_predicates(preds).ok()
    })
}

/// Whole-lattice bits plus the instrumentation counters, with an optional
/// explicit backend (`None` = the default construction path).
#[allow(clippy::too_many_arguments)]
fn lattice_with_stats(
    db: &Database,
    q: &SpjQuery,
    catalog: &SitCatalog,
    mode: ErrorMode,
    strategy: DpStrategy,
    threads: usize,
    pruning: bool,
    backend: Option<&Arc<dyn SelectivityBackend>>,
) -> (Vec<(u64, u64)>, (usize, usize, u64)) {
    let mut est = SelectivityEstimator::new(db, q, catalog, mode)
        .with_strategy(strategy)
        .with_dp_threads(threads);
    if let Some(b) = backend {
        est = est.with_backend(Arc::clone(b));
    }
    if pruning {
        est = est.with_sit_driven_pruning();
    }
    let n = q.predicates.len();
    let bits = (1u32..(1 << n))
        .map(|mask| {
            let (s, e) = est.get_selectivity(PredSet(mask));
            (s.to_bits(), e.to_bits())
        })
        .collect();
    let stats = est.stats();
    (
        bits,
        (stats.memo_entries, stats.peel_entries, stats.vm_calls),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole refactor's bit-identity contract: an explicit
    /// [`DiffBackend`] changes nothing — not the `(sel, err)` bits of any
    /// lattice mask, and not the memo/peel/view-matching counts — under
    /// either exact engine, any thread count, either mode, with and
    /// without §3.4 pruning.
    #[test]
    fn explicit_diff_backend_is_bit_identical_to_default(
        db in small_db(),
        q in query(),
        pool_i in 0usize..3,
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(pool_i))
            .expect("pool build");
        let diff: Arc<dyn SelectivityBackend> = Arc::new(DiffBackend);
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            for (strategy, threads) in [
                (DpStrategy::Dense, 1),
                (DpStrategy::Dense, 2),
                (DpStrategy::Dense, 8),
                (DpStrategy::Recursive, 1),
            ] {
                let (base_bits, base_stats) = lattice_with_stats(
                    &db, &q, &catalog, mode, strategy, threads, pruning, None,
                );
                let (bits, stats) = lattice_with_stats(
                    &db, &q, &catalog, mode, strategy, threads, pruning, Some(&diff),
                );
                prop_assert_eq!(&bits, &base_bits, "{:?} x{} {:?}", strategy, threads, mode);
                prop_assert_eq!(stats, base_stats, "{:?} x{} {:?}", strategy, threads, mode);
            }
        }
    }

    /// Same identity through the beam engine (full-set evaluation: the
    /// beam walk targets whole queries, not lattice probes).
    #[test]
    fn explicit_diff_backend_is_bit_identical_under_beam(
        db in small_db(),
        q in query(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1))
            .expect("pool build");
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let mut base = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Beam);
            let want = base.get_selectivity(base.context().all());
            let mut est = SelectivityEstimator::new(&db, &q, &catalog, mode)
                .with_strategy(DpStrategy::Beam)
                .with_backend(Arc::new(DiffBackend));
            let got = est.get_selectivity(est.context().all());
            prop_assert_eq!(got.0.to_bits(), want.0.to_bits(), "{:?}", mode);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits(), "{:?}", mode);
        }
    }

    /// A non-default backend must still be engine-independent: the BN
    /// backend intercepts filter peels, and Dense (serial and threaded)
    /// must agree with Recursive bit for bit over the whole lattice with
    /// it installed.
    #[test]
    fn bn_backend_is_engine_and_schedule_independent(
        db in small_db(),
        q in query(),
        pruning in any::<bool>(),
    ) {
        let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1))
            .expect("pool build");
        let bn: Arc<dyn SelectivityBackend> =
            Arc::new(BnBackend::new(Arc::new(BnCatalog::build(&db))));
        for mode in [ErrorMode::NInd, ErrorMode::Diff] {
            let (rec, _) = lattice_with_stats(
                &db, &q, &catalog, mode, DpStrategy::Recursive, 1, pruning, Some(&bn),
            );
            for threads in [1, 2, 8] {
                let (dense, _) = lattice_with_stats(
                    &db, &q, &catalog, mode, DpStrategy::Dense, threads, pruning, Some(&bn),
                );
                prop_assert_eq!(&dense, &rec, "bn dense x{} vs recursive, {:?}", threads, mode);
            }
        }
    }
}

/// Deterministic 12-predicate join chain with filters (the dense engine's
/// target regime): two filters per table so the BN backend has same-table
/// conditioning to intercept.
fn chain_db_and_query() -> (Database, SpjQuery) {
    let mut db = Database::new();
    for t in 0..5 {
        let vals: Vec<i64> = (0..24).map(|i| (i * 7 + t * 3) % 8).collect();
        let vals2: Vec<i64> = (0..24).map(|i| (i * 5 + t * 11) % 8).collect();
        db.add_table(
            TableBuilder::new(format!("t{t}"))
                .column("a", vals)
                .column("b", vals2)
                .build()
                .unwrap(),
        );
    }
    let c = |t: u32, col: u16| ColRef::new(TableId(t), col);
    let mut preds = vec![
        Predicate::join(c(0, 1), c(1, 0)),
        Predicate::join(c(1, 1), c(2, 0)),
        Predicate::join(c(2, 1), c(3, 0)),
        Predicate::join(c(3, 1), c(4, 0)),
    ];
    for t in 0..4u32 {
        preds.push(Predicate::filter(c(t, 0), CmpOp::Le, (t as i64) + 3));
        preds.push(Predicate::range(c(t, 1), 1, (t as i64) + 4));
    }
    let q = SpjQuery::from_predicates(preds).unwrap();
    assert_eq!(q.predicates.len(), 12);
    (db, q)
}

/// Armed failpoints do not break the identity: whether or not the injected
/// panic fires, any completed answer from an explicit-`DiffBackend`
/// estimator carries the default path's exact bits, and a fresh estimator
/// after the chaos is unpolluted.
#[test]
fn diff_backend_identity_survives_armed_failpoints() {
    let _guard = failpoint::test_serial_guard();
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut base = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense);
    let (ss, se) = base.get_selectivity(base.context().all());

    for site in ["dp::solve_mask", "par::publish"] {
        failpoint::arm_with(site, Action::Panic, 64, None, 9);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
                .with_strategy(DpStrategy::Dense)
                .with_dp_threads(4)
                .with_backend(Arc::new(DiffBackend));
            est.get_selectivity(est.context().all())
        }));
        failpoint::disarm(site);
        if let Ok((s, e)) = outcome {
            assert_eq!(s.to_bits(), ss.to_bits(), "{site}: survived arm");
            assert_eq!(e.to_bits(), se.to_bits(), "{site}: survived arm");
        }
        let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
            .with_strategy(DpStrategy::Dense)
            .with_dp_threads(4)
            .with_backend(Arc::new(DiffBackend));
        let (fs, fe) = fresh.get_selectivity(fresh.context().all());
        assert_eq!(fs.to_bits(), ss.to_bits(), "{site}: fresh after chaos");
        assert_eq!(fe.to_bits(), se.to_bits(), "{site}: fresh after chaos");
    }
}

/// Budget cancellation through the backend seam: a half-sized quota trips
/// the explicit-`DiffBackend` estimator exactly as it trips the default
/// one (or completes with the exact bits at a fill boundary), and a fresh
/// unlimited run afterward is bit-identical.
#[test]
fn diff_backend_identity_survives_budget_cancellation() {
    let (db, q) = chain_db_and_query();
    let catalog = build_pool(&db, std::slice::from_ref(&q), PoolSpec::ji(1)).unwrap();
    let mut base = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense);
    let (ss, se) = base.get_selectivity(base.context().all());

    // Measure the full cost through the backend-threaded path, then grant
    // half: the meter charges must be unchanged by the refactor too.
    let gauge = Arc::new(BudgetMeter::start(&Budget::unlimited()));
    let mut measured = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_backend(Arc::new(DiffBackend))
        .with_budget_meter(Arc::clone(&gauge));
    measured
        .try_get_selectivity(measured.context().all())
        .expect("unlimited meter cannot trip");
    let baseline_gauge = Arc::new(BudgetMeter::start(&Budget::unlimited()));
    let mut baseline_measured = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_budget_meter(Arc::clone(&baseline_gauge));
    baseline_measured
        .try_get_selectivity(baseline_measured.context().all())
        .expect("unlimited meter cannot trip");
    assert_eq!(
        gauge.spent(),
        baseline_gauge.spent(),
        "backend seam altered the work charge"
    );

    let quota = (gauge.spent() / 2).max(1);
    let tight = Arc::new(BudgetMeter::start(&Budget::unlimited().with_quota(quota)));
    let mut est = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_backend(Arc::new(DiffBackend))
        .with_budget_meter(Arc::clone(&tight));
    match est.try_get_selectivity(est.context().all()) {
        Err(_) => assert!(tight.tripped().is_some(), "error implies a tripped meter"),
        Ok((s, e)) => {
            assert_eq!(s.to_bits(), ss.to_bits(), "boundary Ok must be exact");
            assert_eq!(e.to_bits(), se.to_bits(), "boundary Ok must be exact");
        }
    }
    let mut fresh = SelectivityEstimator::new(&db, &q, &catalog, ErrorMode::Diff)
        .with_strategy(DpStrategy::Dense)
        .with_backend(Arc::new(DiffBackend));
    let (fs, fe) = fresh.get_selectivity(fresh.context().all());
    assert_eq!(fs.to_bits(), ss.to_bits());
    assert_eq!(fe.to_bits(), se.to_bits());
}

/// Soundness of the pessimistic backend on every seeded oracle scenario
/// (the full tier, so the dangling-FK scenario is included): the
/// guaranteed upper bound dominates the true cardinality of every workload
/// query, with truth from the independent [`ExactExecutor`].
#[test]
fn pessimistic_bound_dominates_truth_on_every_oracle_scenario() {
    for sc in scenarios(OracleTier::Full) {
        let sketch = BoundSketch::build(&sc.db);
        let backend = PessimisticBackend::new(Arc::new(sketch));
        let mut exact = ExactExecutor::new(&sc.db);
        for (i, q) in sc.queries.iter().enumerate() {
            let truth = exact.cardinality(&q.tables, &q.predicates) as f64;
            let bound = backend
                .upper_bound(q)
                .expect("sketch built from the scenario database");
            assert!(
                bound >= truth,
                "{} query {i}: bound {bound} < truth {truth}",
                sc.name
            );
        }
    }
}

/// Soundness survives mutation drain: replay each scenario family's seeded
/// delta stream to the end, rebuild the sketch over the drained database,
/// and the bound still dominates exact truth on the original workload
/// (whose queries now hit inserted, updated, and deleted rows).
#[test]
fn pessimistic_bound_dominates_truth_on_mutation_drained_catalogs() {
    for sc in scenarios(OracleTier::Smoke) {
        let stream = generate_mutations(
            &sc.db,
            MutationConfig {
                ops: 300,
                batch_size: 50,
                seed: 0xB0_07ED ^ sc.fingerprint,
                drift: 0.5,
            },
        );
        let drained = &stream.final_db;
        let sketch = BoundSketch::build(drained);
        let mut exact = ExactExecutor::new(drained);
        for (i, q) in sc.queries.iter().enumerate() {
            let truth = exact.cardinality(&q.tables, &q.predicates) as f64;
            let bound = sketch
                .upper_bound(q)
                .expect("sketch built from the drained database");
            assert!(
                bound >= truth,
                "{} drained, query {i}: bound {bound} < truth {truth}",
                sc.name
            );
        }
    }
}

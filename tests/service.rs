//! Integration tests for the `sqe-service` estimation service: concurrent
//! estimates must be **bit-identical** to a fresh single-threaded
//! [`SelectivityEstimator`] over the same catalog, cold and warm, and the
//! cache-key canonicalization must be injective on distinct
//! `(predicate set, error mode)` inputs.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::Arc;

use proptest::prelude::*;

use sqe::core::cache::CacheKey;
use sqe::core::{
    build_pool_threaded, DeltaConfig, IngestReport, LiveCatalog, PoolSpec, SitOptions,
};
use sqe::datagen::{generate_mutations, MutationConfig};
use sqe::prelude::*;
use sqe::service::{DpThreadsMode, EstimationService, ServiceConfig};

fn service_setup(mode: ErrorMode) -> (Arc<Database>, Vec<SpjQuery>, EstimationService) {
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.002,
        min_rows: 100,
        ..Default::default()
    });
    let wl = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 12,
            joins: 3,
            ..Default::default()
        },
    );
    let pool = build_pool(&sf.db, &wl, PoolSpec::ji(2)).unwrap();
    let db = Arc::new(sf.db);
    let svc = EstimationService::new(
        Arc::clone(&db),
        pool,
        ServiceConfig {
            mode,
            ..ServiceConfig::default()
        },
    );
    (db, wl, svc)
}

/// Reference results from fresh single-threaded estimators, one per query.
fn reference(db: &Database, wl: &[SpjQuery], catalog: &SitCatalog, mode: ErrorMode) -> Vec<u64> {
    wl.iter()
        .map(|q| {
            let mut est = SelectivityEstimator::new(db, q, catalog, mode);
            est.selectivity().to_bits()
        })
        .collect()
}

/// 8 threads stream the whole workload through the service concurrently;
/// every returned selectivity is compared bit-for-bit against the fresh
/// single-threaded estimator. Runs twice without resetting the service, so
/// the second round exercises the warm (query + link) cache.
#[test]
fn eight_threads_match_single_threaded_bit_for_bit_cold_and_warm() {
    for mode in [ErrorMode::NInd, ErrorMode::Diff] {
        let (db, wl, svc) = service_setup(mode);
        let expected = reference(&db, &wl, svc.snapshot().sits(), mode);

        for round in ["cold", "warm"] {
            std::thread::scope(|s| {
                for t in 0..8 {
                    let (svc, wl, expected) = (&svc, &wl, &expected);
                    s.spawn(move || {
                        // Each thread walks the stream from a different
                        // offset so threads interleave distinct queries.
                        for i in 0..wl.len() {
                            let j = (i + t * 3) % wl.len();
                            let got = svc.estimate(&wl[j]);
                            assert_eq!(
                                got.selectivity.to_bits(),
                                expected[j],
                                "{mode:?}/{round}: query {j} diverged from single-threaded"
                            );
                        }
                    });
                }
            });
        }
        let stats = svc.stats();
        assert_eq!(stats.estimates, 2 * 8 * wl.len() as u64);
        assert!(
            stats.query_cache_hits > 0,
            "warm round must hit the whole-query cache"
        );
    }
}

/// Batches against a warm cache agree with per-query estimates and with the
/// single-threaded reference.
#[test]
fn warm_batches_are_bit_identical_too() {
    let (db, wl, svc) = service_setup(ErrorMode::Diff);
    let expected = reference(&db, &wl, svc.snapshot().sits(), ErrorMode::Diff);
    let cold: Vec<_> = svc.estimate_batch(&wl);
    let warm: Vec<_> = svc.estimate_batch(&wl);
    for ((c, w), e) in cold.iter().zip(&warm).zip(&expected) {
        assert_eq!(c.selectivity.to_bits(), *e);
        assert_eq!(w.selectivity.to_bits(), *e);
        assert!(w.cached);
    }
}

/// The parallel pool build feeding the service is itself bit-identical to a
/// sequential build, so a service rebuilt on N threads answers exactly like
/// one built on 1 thread.
#[test]
fn service_over_parallel_pool_matches_sequential_pool() {
    let (db, wl, _) = service_setup(ErrorMode::Diff);
    let seq = build_pool_threaded(
        &db,
        &wl,
        PoolSpec::ji(2),
        SitOptions::default(),
        NonZeroUsize::new(1).unwrap(),
    )
    .unwrap();
    let par = build_pool_threaded(
        &db,
        &wl,
        PoolSpec::ji(2),
        SitOptions::default(),
        NonZeroUsize::new(8).unwrap(),
    )
    .unwrap();
    let expected = reference(&db, &wl, &seq, ErrorMode::Diff);
    let svc = EstimationService::new(Arc::clone(&db), par, ServiceConfig::default());
    for (q, e) in wl.iter().zip(&expected) {
        assert_eq!(svc.estimate(q).selectivity.to_bits(), *e);
    }
}

/// The value fields of an [`sqe::service::Estimate`] as raw bits — every
/// deterministic field, i.e. all but the scheduling-dependent `cached` flag.
fn estimate_bits(e: &sqe::service::Estimate) -> (u64, u64, u64, u64) {
    (
        e.selectivity.to_bits(),
        e.error.to_bits(),
        e.cardinality.to_bits(),
        e.epoch,
    )
}

/// A catalog `install` landing mid-batch must not tear a batch: the batch
/// pinned its snapshot up front, so every estimate reports one epoch and
/// the same bits as a quiet-service batch. Runs the race once per worker
/// configuration, with the installer un-synchronized (whichever side wins,
/// the invariants hold — both epochs carry the identical catalog here, so
/// bit-identity to the reference is checkable in every interleaving).
#[test]
fn install_landing_mid_batch_never_tears_a_parallel_batch() {
    let (db, wl, _) = service_setup(ErrorMode::Diff);
    let pool = || build_pool(&db, &wl, PoolSpec::ji(2)).unwrap();
    let expected: Vec<_> = {
        let svc = EstimationService::new(Arc::clone(&db), pool(), ServiceConfig::default());
        svc.estimate_batch(&wl).iter().map(estimate_bits).collect()
    };
    for threads in [1usize, 2, 8] {
        let svc = EstimationService::new(
            Arc::clone(&db),
            pool(),
            ServiceConfig {
                batch_threads: Some(NonZeroUsize::new(threads).unwrap()),
                ..ServiceConfig::default()
            },
        );
        let batch = std::thread::scope(|s| {
            let batch = s.spawn(|| svc.estimate_batch(&wl));
            s.spawn(|| svc.install(pool(), None));
            batch.join().expect("batch thread")
        });
        let epoch = batch[0].epoch;
        for (got, want) in batch.iter().zip(&expected) {
            assert_eq!(got.epoch, epoch, "one snapshot answers the whole batch");
            assert_eq!(
                (
                    got.selectivity.to_bits(),
                    got.error.to_bits(),
                    got.cardinality.to_bits()
                ),
                (want.0, want.1, want.2),
                "{threads} batch threads"
            );
        }
    }
}

/// Concurrent estimates racing `partial_install` must never observe a
/// half-installed catalog: every estimate pins one snapshot, and its value
/// bits must match the single-threaded reference for exactly the catalog
/// generation its epoch names. An installer thread flips the service
/// between two fully-known states — the seed catalog (A) and a
/// delta-maintained catalog over a mutated database (B) — while worker
/// threads stream the workload; a torn install (epoch bumped before the
/// catalog/db/cache swap, or a stale cache entry surviving into the wrong
/// generation) would surface as an estimate whose bits belong to neither
/// state, or to the wrong state for its epoch.
#[test]
fn estimates_racing_partial_install_never_see_a_half_installed_catalog() {
    use sqe::core::SitId;
    use std::collections::BTreeSet;

    let (db, wl, svc) = service_setup(ErrorMode::Diff);
    let catalog_a = build_pool(&db, &wl, PoolSpec::ji(2)).unwrap();
    let expected_a = reference(&db, &wl, &catalog_a, ErrorMode::Diff);

    // State B: replay a seeded mutation stream through a live catalog,
    // then force-refresh so B is exactly the cold build over the mutated
    // database. The synthetic install report carries the union of touched
    // tables and every SIT whose histogram ever changed, so the cache
    // carry-over is valid in both install directions (A -> B and B -> A).
    let stream = generate_mutations(
        &db,
        MutationConfig {
            ops: 300,
            batch_size: 50,
            seed: 0x9E10_C4EC,
            drift: 1.5,
        },
    );
    let mut live = LiveCatalog::new((*db).clone(), catalog_a.clone(), DeltaConfig::default());
    let mut touched = BTreeSet::new();
    let mut stale: BTreeSet<SitId> = BTreeSet::new();
    let mut ops = 0usize;
    for batch in &stream.batches {
        let r = live.ingest(batch).unwrap();
        touched.extend(r.tables_touched.iter().copied());
        stale.extend(r.sits_refreshed.iter().copied());
        stale.extend(r.sits_merged.iter().copied());
        ops += r.ops_applied;
    }
    stale.extend(live.refresh_all().unwrap());
    let db_b = Arc::new(live.db().clone());
    let catalog_b = live.catalog().clone();
    let expected_b = reference(&db_b, &wl, &catalog_b, ErrorMode::Diff);
    assert_ne!(
        expected_a, expected_b,
        "the stream must actually change some estimates or the race proves nothing"
    );
    let report = IngestReport {
        ops_applied: ops,
        tables_touched: touched.into_iter().collect(),
        sits_refreshed: stale.into_iter().collect(),
        ..IngestReport::default()
    };

    // Epoch 0 is state A; the installer alternates B, A, B, ... so odd
    // epochs are B and even epochs are A.
    const INSTALLS: usize = 6;
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..INSTALLS {
                if i % 2 == 0 {
                    svc.partial_install(Arc::clone(&db_b), catalog_b.clone(), None, &report);
                } else {
                    svc.partial_install(Arc::clone(&db), catalog_a.clone(), None, &report);
                }
            }
        });
        for _ in 0..4 {
            let (svc, wl, expected_a, expected_b) = (&svc, &wl, &expected_a, &expected_b);
            s.spawn(move || {
                for _pass in 0..4 {
                    for (j, q) in wl.iter().enumerate() {
                        let got = svc.estimate(q);
                        let want = if got.epoch % 2 == 0 {
                            expected_a[j]
                        } else {
                            expected_b[j]
                        };
                        assert_eq!(
                            got.selectivity.to_bits(),
                            want,
                            "query {j} at epoch {}: bits belong to the wrong catalog \
                             generation — the snapshot was torn",
                            got.epoch
                        );
                    }
                }
            });
        }
    });
    assert_eq!(svc.snapshot().epoch(), INSTALLS as u64);
    assert_eq!(svc.stats().ingest.partial_installs, INSTALLS as u64);
}

/// A fixed universe of distinct predicates over a 3-table schema; subsets
/// of it play the role of `PredSet`s in the injectivity property.
fn predicate_universe() -> Vec<Predicate> {
    let c = |t: u32, col: u16| ColRef::new(TableId(t), col);
    vec![
        Predicate::filter(c(0, 0), CmpOp::Eq, 1),
        Predicate::filter(c(0, 0), CmpOp::Eq, 2),
        Predicate::filter(c(1, 1), CmpOp::Le, 5),
        Predicate::join(c(0, 1), c(1, 0)),
        Predicate::join(c(1, 1), c(2, 0)),
        Predicate::range(c(2, 1), 0, 7),
    ]
}

fn subset(universe: &[Predicate], mask: u8) -> Vec<Predicate> {
    universe
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, p)| *p)
        .collect()
}

fn mode_of(i: u8) -> ErrorMode {
    match i % 3 {
        0 => ErrorMode::NInd,
        1 => ErrorMode::Diff,
        _ => ErrorMode::Opt,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonicalization is injective on distinct `(PredSet, ErrorMode)`
    /// inputs: two conditional keys collide iff their predicate *sets* and
    /// modes coincide — permuting or duplicating list entries never
    /// separates equal sets, and distinct sets/modes never merge.
    #[test]
    fn cache_key_canonicalization_is_injective(
        mask_p1 in 0u8..64, mask_q1 in 0u8..64, m1 in 0u8..3,
        mask_p2 in 0u8..64, mask_q2 in 0u8..64, m2 in 0u8..3,
        shuffle in any::<u64>(),
    ) {
        let uni = predicate_universe();
        let (p1, q1) = (subset(&uni, mask_p1), subset(&uni, mask_q1));
        let (mut p2, mut q2) = (subset(&uni, mask_p2), subset(&uni, mask_q2));
        // Permute (and sometimes duplicate an element of) the second pair:
        // canonicalization must erase exactly this kind of difference.
        let p2_rot = (shuffle as usize) % p2.len().max(1);
        let q2_rot = (shuffle as usize / 7) % q2.len().max(1);
        p2.rotate_left(p2_rot);
        q2.rotate_left(q2_rot);
        if shuffle.is_multiple_of(3) {
            if let Some(&first) = p2.first() {
                p2.push(first);
            }
        }
        let k1 = CacheKey::conditional(mode_of(m1), &p1, &q1);
        let k2 = CacheKey::conditional(mode_of(m2), &p2, &q2);
        let same_inputs =
            mask_p1 == mask_p2 && mask_q1 == mask_q2 && mode_of(m1) == mode_of(m2);
        prop_assert_eq!(k1 == k2, same_inputs);
    }

    /// Equal keys as HashMap keys behave set-like: inserting under any
    /// permutation of a predicate list finds the entry under any other.
    #[test]
    fn equal_sets_share_one_map_slot(
        mask in 1u8..64, m in 0u8..3, rot in 0usize..6,
    ) {
        let uni = predicate_universe();
        let preds = subset(&uni, mask);
        let mut rotated = preds.clone();
        let steps = rot % rotated.len();
        rotated.rotate_left(steps);
        let mut map = HashMap::new();
        map.insert(CacheKey::conditional(mode_of(m), &preds, &[]), 42u32);
        let probe = CacheKey::conditional(mode_of(m), &rotated, &[]);
        prop_assert_eq!(map.get(&probe), Some(&42));
    }
}

/// Strategy: a 4-table database with 2 columns each, narrow value domain so
/// joins match and histograms are non-trivial (mirrors the dense-engine
/// property tests).
fn gen_db() -> impl Strategy<Value = Database> {
    use sqe::engine::table::TableBuilder;
    prop::collection::vec(prop::collection::vec(0i64..8, 2..14), 8).prop_map(|cols| {
        let mut db = Database::new();
        for (t, pair) in cols.chunks(2).enumerate() {
            let n = pair[0].len().min(pair[1].len());
            db.add_table(
                TableBuilder::new(format!("t{t}"))
                    .column("a", pair[0][..n].to_vec())
                    .column("b", pair[1][..n].to_vec())
                    .build()
                    .expect("consistent"),
            );
        }
        db
    })
}

/// Strategy: a random workload of 2–7 queries over the 4-table schema.
fn gen_workload() -> impl Strategy<Value = Vec<SpjQuery>> {
    let colref = (0u32..4, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    let pred = prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8).prop_map(|(c, lo, hi)| Predicate::range(
            c,
            lo.min(hi),
            lo.max(hi)
        )),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Le, v)),
        (colref.clone(), colref).prop_filter_map("self-column join", |(l, r)| {
            (l.table != r.table).then(|| Predicate::join(l, r))
        }),
    ];
    let query = prop::collection::vec(pred, 1..6).prop_filter_map("degenerate query", |mut p| {
        p.sort_unstable();
        p.dedup();
        SpjQuery::from_predicates(p).ok()
    });
    prop::collection::vec(query, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel `estimate_batch` is bit-identical and order-stable vs the
    /// sequential path across worker counts {1, 2, 8} — comparing every
    /// deterministic `Estimate` field (the `cached` flag is scheduling-
    /// dependent by design). The 8-worker service also stacks the
    /// rank-parallel DP fill (2 DP threads per estimator) to cover the two
    /// parallel layers composed.
    #[test]
    fn parallel_batches_are_bit_identical_and_order_stable(
        db in gen_db(),
        wl in gen_workload(),
        pool_i in 0usize..3,
        mode_i in 0u8..2,
    ) {
        let mode = mode_of(mode_i);
        let db = Arc::new(db);
        let pool = || build_pool(&db, &wl, PoolSpec::ji(pool_i)).expect("pool build");
        let config = |batch: usize, dp: usize| ServiceConfig {
            mode,
            batch_threads: Some(NonZeroUsize::new(batch).unwrap()),
            dp_threads: DpThreadsMode::Fixed(NonZeroUsize::new(dp).unwrap()),
            ..ServiceConfig::default()
        };
        let sequential = EstimationService::new(Arc::clone(&db), pool(), config(1, 1));
        let expected: Vec<_> = sequential.estimate_batch(&wl).iter().map(estimate_bits).collect();
        for (batch, dp) in [(2, 1), (8, 2)] {
            let svc = EstimationService::new(Arc::clone(&db), pool(), config(batch, dp));
            // Two rounds: cold caches, then warm (whole-query hits).
            for round in ["cold", "warm"] {
                let got: Vec<_> = svc.estimate_batch(&wl).iter().map(estimate_bits).collect();
                prop_assert_eq!(
                    &got, &expected,
                    "{} batch threads, {} dp threads, {}", batch, dp, round
                );
            }
        }
    }
}

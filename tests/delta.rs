//! Integration tests for the delta-ingest subsystem ([`LiveCatalog`]).
//!
//! Two layers:
//!
//! * a seeded end-to-end mutation stream over a snowflake database — the
//!   staleness bound must hold after every batch, only SITs over mutated
//!   tables may be refreshed, the drifting fact measure must trigger at
//!   least one drift rebuild, and after draining the stream plus a forced
//!   refresh the catalog (and every estimate from it) must be
//!   bit-identical to one built cold from the final database state;
//! * property tests of the maintenance ladder on random mutation batches —
//!   below the drift threshold incremental maintenance keeps estimates
//!   within the declared staleness bound of a full rebuild, and past the
//!   threshold the rebuild is bit-identical to a from-scratch build.

use proptest::prelude::*;

use sqe::core::{build_pool, DeltaConfig, LiveCatalog, PoolSpec};
use sqe::datagen::{database_fingerprint, generate_mutations, MutationConfig};
use sqe::engine::delta::{DeltaBatch, RowOp, TableDelta};
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;

/// True when `sit` reads any of `touched` (its attribute's table or any
/// table of its conditioning expression).
fn sit_reads(sit: &Sit, touched: &[TableId]) -> bool {
    touched.contains(&sit.attr.table)
        || sit
            .cond
            .iter()
            .any(|p| p.tables().iter().any(|t| touched.contains(&t)))
}

/// A single-filter query over `col`, thresholded at the column midpoint.
fn probe(db: &Database, col: ColRef) -> SpjQuery {
    let (lo, hi) = db
        .column(col)
        .expect("probe column exists")
        .min_max()
        .expect("probe column non-empty");
    let mid = lo + (hi - lo) / 2;
    SpjQuery::from_predicates(vec![Predicate::filter(col, CmpOp::Le, mid)])
        .expect("single-filter probe is a valid query")
}

/// Selectivity bits for every workload query under `catalog`.
fn estimate_bits(db: &Database, wl: &[SpjQuery], catalog: &SitCatalog) -> Vec<u64> {
    wl.iter()
        .map(|q| {
            let mut est = SelectivityEstimator::new(db, q, catalog, ErrorMode::Diff);
            est.selectivity().to_bits()
        })
        .collect()
}

/// The acceptance-path integration test: a seeded mutation stream ingested
/// batch by batch. (The CI `ingest` soak runs the same contract at 10k ops
/// against the live service; this test keeps the workspace suite fast.)
#[test]
fn seeded_stream_respects_bounds_and_converges_to_cold_build() {
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.0,
        theta: 1.0,
        dangling_frac: 0.10,
        correlation: 1.0,
        seed: 0xDE17_A001,
        min_rows: 100,
    });
    let stream = generate_mutations(
        &sf.db,
        MutationConfig {
            ops: 1_000,
            batch_size: 50,
            seed: 0xDE17_A002,
            drift: 1.5,
        },
    );
    let mut wl = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 8,
            joins: 2,
            filters: 2,
            target_selectivity: 0.05,
            seed: 0xDE17_A003,
        },
    );
    // Pin the stream's drifting measure so the pool holds a base SIT that
    // can hit the drift threshold.
    wl.push(probe(&sf.db, stream.measure));
    let catalog = build_pool(&sf.db, &wl, PoolSpec::ji(2)).expect("pool build");

    let config = DeltaConfig {
        max_staleness: 0.15,
        drift_threshold: 0.02,
        ..DeltaConfig::default()
    };
    let mut live = LiveCatalog::new(sf.db.clone(), catalog, config);

    let (mut merges, mut drift_rebuilds, mut deferred) = (0usize, 0usize, 0usize);
    for batch in &stream.batches {
        let report = live.ingest(batch).expect("ingest");
        assert!(
            live.max_staleness_observed() <= config.max_staleness + 1e-12,
            "staleness bound violated after batch {}: {}",
            report.batch_seq,
            live.max_staleness_observed()
        );
        for &id in &report.sits_refreshed {
            assert!(
                sit_reads(live.catalog().get(id), &report.tables_touched),
                "batch {}: refreshed {id:?} reads none of {:?}",
                report.batch_seq,
                report.tables_touched
            );
        }
        merges += report.merges;
        drift_rebuilds += report.drift_rebuilds;
        deferred += report.sits_deferred;
    }
    assert!(
        drift_rebuilds >= 1,
        "drifting measure never hit the drift threshold"
    );
    assert!(merges > 0, "no base SIT ever merged incrementally");
    assert!(deferred > 0, "no SIT was ever deferred within bounds");
    assert_eq!(
        database_fingerprint(live.db()),
        database_fingerprint(&stream.final_db),
        "replaying the stream must land on the generator's final database"
    );

    // Drain + forced refresh: the catalog and every estimate from it must
    // be bit-identical to a cold build over the final database state.
    live.refresh_all().expect("refresh");
    assert_eq!(live.max_staleness_observed(), 0.0);
    let cold = build_pool(live.db(), &wl, PoolSpec::ji(2)).expect("cold pool");
    assert_eq!(live.catalog().len(), cold.len());
    for ((id, warm), (_, cold_sit)) in live.catalog().iter().zip(cold.iter()) {
        assert_eq!(warm.attr, cold_sit.attr, "{id:?}");
        assert_eq!(warm.cond, cold_sit.cond, "{id:?}");
        assert_eq!(warm.histogram, cold_sit.histogram, "{id:?}");
        assert_eq!(warm.diff.to_bits(), cold_sit.diff.to_bits(), "{id:?}");
    }
    assert_eq!(
        estimate_bits(live.db(), &wl, live.catalog()),
        estimate_bits(live.db(), &wl, &cold),
        "refreshed live catalog must answer bit-identically to a cold build"
    );
}

// ---------------------------------------------------------------------------
// Property tests: the maintenance ladder on random mutation batches.
// ---------------------------------------------------------------------------

/// An abstract mutation op; concretized against the running row count so
/// row indices are always valid when the batch applies.
#[derive(Debug, Clone)]
enum AbstractOp {
    Insert {
        a: i64,
        b: i64,
    },
    Update {
        row_sel: usize,
        column: u16,
        value: i64,
    },
    Delete {
        row_sel: usize,
    },
}

const DOMAIN: i64 = 16;
const ROWS: usize = 60;

/// Two-table database `r(a, b)`, `s(a, c)` with values in `0..DOMAIN`.
/// The domain is far below the default bucket budget, so every histogram
/// in play is per-value exact (singleton buckets) — see the property
/// comments below for why that matters.
fn two_table_db() -> Database {
    let a: Vec<i64> = (0..ROWS).map(|r| (r % DOMAIN as usize) as i64).collect();
    let b: Vec<i64> = (0..ROWS)
        .map(|r| ((r * 7) % DOMAIN as usize) as i64)
        .collect();
    let mut db = Database::new();
    db.add_table(
        TableBuilder::new("r")
            .column("a", a.clone())
            .column("b", b.clone())
            .build()
            .unwrap(),
    );
    db.add_table(
        TableBuilder::new("s")
            .column("a", b)
            .column("c", a)
            .build()
            .unwrap(),
    );
    db
}

/// A J2 pool over a join query with filters on both tables: base SITs on
/// every referenced column plus join SITs conditioned on `r ⋈ s`.
fn two_table_catalog(db: &Database) -> SitCatalog {
    build_pool(db, &two_table_queries(), PoolSpec::ji(2)).expect("pool")
}

/// Concretizes abstract ops into a one-table batch against `r`, tracking
/// the running row count so every `Delete`/`Update` targets a live row.
fn concretize(ops: &[AbstractOp]) -> DeltaBatch {
    let mut rows = ROWS;
    let mut concrete = Vec::new();
    for op in ops {
        match *op {
            AbstractOp::Insert { a, b } => {
                concrete.push(RowOp::Insert {
                    values: vec![Some(a), Some(b)],
                });
                rows += 1;
            }
            AbstractOp::Update {
                row_sel,
                column,
                value,
            } => {
                concrete.push(RowOp::Update {
                    row: row_sel % rows,
                    column,
                    value: Some(value),
                });
            }
            AbstractOp::Delete { row_sel } => {
                if rows > 1 {
                    concrete.push(RowOp::Delete {
                        row: row_sel % rows,
                    });
                    rows -= 1;
                }
            }
        }
    }
    DeltaBatch {
        seq: 0,
        deltas: vec![TableDelta {
            table: TableId(0),
            ops: concrete,
        }],
    }
}

fn abstract_op() -> impl Strategy<Value = AbstractOp> {
    prop_oneof![
        (0..DOMAIN, 0..DOMAIN).prop_map(|(a, b)| AbstractOp::Insert { a, b }),
        (0usize..1024, 0u16..2, 0..DOMAIN).prop_map(|(row_sel, column, value)| {
            AbstractOp::Update {
                row_sel,
                column,
                value,
            }
        }),
        (0usize..1024).prop_map(|row_sel| AbstractOp::Delete { row_sel }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Below the drift threshold the ladder stays incremental (no
    /// rebuilds), and estimates from the merged catalog are within the
    /// declared staleness bound of a full from-scratch rebuild. With a
    /// per-value-exact domain the merged histogram must track the true
    /// value counts exactly, so any divergence beyond float noise is a
    /// mass-accounting bug in `merge_delta` — the bound is the contract,
    /// exactness is what actually holds.
    #[test]
    fn below_drift_threshold_estimates_stay_within_staleness_bound(
        ops in prop::collection::vec(abstract_op(), 1..18),
        threshold in 0..DOMAIN,
    ) {
        let db = two_table_db();
        let catalog = two_table_catalog(&db);
        let config = DeltaConfig {
            // 18 ops on 60 rows is at most 30% staleness: below the bound,
            // and the drift threshold is unreachable, so every base SIT
            // stays in the incremental-merge regime.
            max_staleness: 0.35,
            drift_threshold: 10.0,
            ..DeltaConfig::default()
        };
        let mut live = LiveCatalog::new(db, catalog, config);
        let report = live.ingest(&concretize(&ops)).unwrap();
        prop_assert_eq!(report.rebuilds(), 0, "ladder left the incremental regime");
        prop_assert!(live.max_staleness_observed() <= config.max_staleness + 1e-12);

        let cold = build_pool(live.db(), &two_table_queries(), PoolSpec::ji(2)).unwrap();
        for col in [ColRef::new(TableId(0), 0), ColRef::new(TableId(0), 1)] {
            let q = SpjQuery::from_predicates(
                vec![Predicate::filter(col, CmpOp::Le, threshold)],
            ).unwrap();
            let live_sel = SelectivityEstimator::new(
                live.db(), &q, live.catalog(), ErrorMode::Diff,
            ).selectivity();
            let cold_sel = SelectivityEstimator::new(
                live.db(), &q, &cold, ErrorMode::Diff,
            ).selectivity();
            prop_assert!(
                (live_sel - cold_sel).abs() <= config.max_staleness + 1e-9,
                "merged estimate {live_sel} drifted past the staleness bound \
                 from cold rebuild {cold_sel} on {col:?} <= {threshold}"
            );
        }
    }

    /// Past the threshold (a zero staleness budget forces every affected
    /// SIT to rebuild on every batch) the maintained catalog is
    /// bit-identical to one built from scratch over the mutated database.
    #[test]
    fn past_threshold_rebuild_is_bit_identical_to_from_scratch(
        ops in prop::collection::vec(abstract_op(), 1..18),
    ) {
        let db = two_table_db();
        let catalog = two_table_catalog(&db);
        let config = DeltaConfig {
            max_staleness: 0.0,
            drift_threshold: 10.0,
            ..DeltaConfig::default()
        };
        let mut live = LiveCatalog::new(db, catalog, config);
        let report = live.ingest(&concretize(&ops)).unwrap();
        prop_assert!(report.rebuilds() > 0, "zero budget must force rebuilds");
        prop_assert_eq!(report.sits_deferred, 0, "nothing may defer on a zero budget");
        prop_assert_eq!(live.max_staleness_observed(), 0.0);

        let cold = build_pool(live.db(), &two_table_queries(), PoolSpec::ji(2)).unwrap();
        prop_assert_eq!(live.catalog().len(), cold.len());
        for ((id, warm), (_, cold_sit)) in live.catalog().iter().zip(cold.iter()) {
            prop_assert_eq!(&warm.attr, &cold_sit.attr, "{:?}", id);
            prop_assert_eq!(&warm.cond, &cold_sit.cond, "{:?}", id);
            prop_assert_eq!(&warm.histogram, &cold_sit.histogram, "{:?}", id);
            prop_assert_eq!(warm.diff.to_bits(), cold_sit.diff.to_bits(), "{:?}", id);
        }
    }
}

/// The fixed query set behind [`two_table_catalog`], for cold rebuilds.
fn two_table_queries() -> Vec<SpjQuery> {
    vec![SpjQuery::from_predicates(vec![
        Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0)),
        Predicate::filter(ColRef::new(TableId(0), 1), CmpOp::Le, DOMAIN / 2),
        Predicate::filter(ColRef::new(TableId(1), 1), CmpOp::Le, DOMAIN / 2),
    ])
    .unwrap()]
}

//! Chaos suite: randomized failpoints, deadlines, and cancellations under
//! an 8-thread budgeted batch load.
//!
//! Asserts the robustness contract of the resource-governance layer:
//!
//! * **no hang** — the whole run completes under a watchdog;
//! * **no poisoned lock / leaked panic** — every request returns a value
//!   or a clean `Overloaded` shed, never a propagated panic;
//! * **honest labels** — `quality == Full` answers are bit-identical to a
//!   fault-free unbudgeted run; degraded answers carry a reason;
//! * **recovery** — after disarming every failpoint the service serves
//!   `Full`-quality answers again.
//!
//! Failpoint state is process-global, so this file is its own test binary
//! and runs the scenario in one `#[test]` (serialized with the shared
//! guard for safety against future additions).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use sqe::core::failpoint::{self, Action};
use sqe::core::{BackendKind, BnCatalog, DeltaConfig, LiveCatalog};
use sqe::datagen::database_fingerprint;
use sqe::engine::delta::{DeltaBatch, RowOp, TableDelta};
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;
use sqe::service::Budget;

/// Deterministic xorshift64* for budget/failpoint mixing.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn chaos_db() -> Arc<Database> {
    let rows = 256usize;
    let mut db = Database::new();
    for t in 0..3 {
        let a: Vec<i64> = (0..rows).map(|r| ((r * 7 + t * 3) % 23) as i64).collect();
        let b: Vec<i64> = (0..rows).map(|r| ((r * 13 + t * 5) % 17) as i64).collect();
        db.add_table(
            TableBuilder::new(&format!("t{t}"))
                .column("a", a)
                .column("b", b)
                .build()
                .unwrap(),
        );
    }
    Arc::new(db)
}

fn chaos_queries(db: &Database) -> Vec<SpjQuery> {
    let mut queries = Vec::new();
    for v in 0..4i64 {
        for (l, r) in [(0u32, 1u32), (1, 2)] {
            queries.push(
                SpjQuery::from_predicates(vec![
                    Predicate::join(ColRef::new(TableId(l), 0), ColRef::new(TableId(r), 0)),
                    Predicate::filter(ColRef::new(TableId(l), 1), CmpOp::Eq, v),
                    Predicate::range(ColRef::new(TableId(r), 1), 0, 8 + v),
                ])
                .unwrap(),
            );
        }
    }
    let _ = db;
    queries
}

fn chaos_service(db: &Arc<Database>, catalog: SitCatalog) -> EstimationService {
    EstimationService::new(
        Arc::clone(db),
        catalog,
        ServiceConfig {
            // Two layers of parallelism so the chaos load exercises the
            // parallel fill (and its OnceMap poisoning) too.
            dp_threads: DpThreadsMode::Fixed(std::num::NonZeroUsize::new(2).unwrap()),
            batch_threads: std::num::NonZeroUsize::new(2),
            max_in_flight: 16,
            ..ServiceConfig::default()
        },
    )
}

/// One randomized budget: unlimited / tight deadline / tiny quota /
/// pre-cancelled, in rotation.
fn random_budget(rng: &mut Rng) -> Budget {
    match rng.next() % 4 {
        0 => Budget::unlimited(),
        1 => Budget::unlimited().with_deadline(Duration::from_micros(50 + rng.next() % 2000)),
        2 => Budget::unlimited().with_quota(rng.next() % 200),
        _ => {
            let c = CancelToken::new();
            if rng.next() % 2 == 0 {
                c.cancel();
            }
            Budget::unlimited().with_cancel(c)
        }
    }
}

#[test]
fn randomized_faults_never_hang_poison_or_mislabel() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let db = chaos_db();
    let queries = chaos_queries(&db);
    let catalog = sqe::core::build_pool(&db, &queries, PoolSpec::ji(1)).expect("pool");
    let svc = Arc::new(chaos_service(&db, catalog.clone()));

    // Fault-free reference: every query's Full answer, from a fresh
    // service so the chaos run's caches can't influence it.
    let reference: Vec<f64> = {
        let clean = chaos_service(&db, catalog.clone());
        queries
            .iter()
            .map(|q| clean.estimate(q).selectivity)
            .collect()
    };

    // Quiet the panic reports the injected faults produce on purpose —
    // the default hook would spam stderr for every isolated panic.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Arm the whole failpoint surface at low, deterministic rates.
    failpoint::arm_with("dp::solve_mask", Action::Panic, 512, None, 11);
    failpoint::arm_with("par::publish", Action::Panic, 256, None, 22);
    failpoint::arm_with("service::cache_insert", Action::Sleep(1), 64, None, 33);
    failpoint::arm_with("service::install", Action::Sleep(1), 4, None, 44);

    let full_answers = AtomicU64::new(0);
    let degraded_answers = AtomicU64::new(0);
    let sheds = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);

    // Watchdog: the chaos load runs in its own threads; the main thread
    // fails the test if they don't all finish in time.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::scope(|s| {
        for worker in 0..8u64 {
            let (svc, queries, reference, catalog) = (&svc, &queries, &reference, &catalog);
            let (full_answers, degraded_answers, sheds, mismatches) =
                (&full_answers, &degraded_answers, &sheds, &mismatches);
            let done_tx = done_tx.clone();
            s.spawn(move || {
                let mut rng = Rng(0x9E3779B97F4A7C15 ^ (worker + 1));
                for round in 0..120 {
                    // Periodic concurrent installs keep the whole-query
                    // cache cold — otherwise the chaos load degenerates to
                    // cache hits and stops exercising the DP failpoints —
                    // and race snapshot swaps against in-flight estimates.
                    if worker == 0 && round % 8 == 7 {
                        svc.install(catalog.clone(), None);
                    }
                    let idx = (rng.next() as usize) % queries.len();
                    let budget = random_budget(&mut rng);
                    let outcome = if round % 10 == 9 {
                        // Periodic batch call to chaos the batch path too.
                        svc.estimate_batch_with_budget(&queries[idx..=idx], &budget)
                            .map(|v| v[0])
                    } else {
                        svc.estimate_with_budget(&queries[idx], &budget)
                    };
                    match outcome {
                        Ok(e) => {
                            assert!(
                                e.selectivity.is_finite(),
                                "non-finite selectivity under chaos"
                            );
                            if e.quality == Quality::Full {
                                assert!(e.degraded_reason.is_none());
                                full_answers.fetch_add(1, Ordering::Relaxed);
                                if e.selectivity.to_bits() != reference[idx].to_bits() {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                            } else {
                                assert!(
                                    e.degraded_reason.is_some(),
                                    "degraded answer without a reason"
                                );
                                degraded_answers.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServiceError::Overloaded { retry_after, .. }) => {
                            assert!(retry_after >= Duration::from_millis(1));
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                done_tx.send(()).unwrap();
            });
        }
        drop(done_tx);
        for _ in 0..8 {
            done_rx
                .recv_timeout(Duration::from_secs(120))
                .expect("chaos worker hung: watchdog fired");
        }
    });

    failpoint::disarm_all();
    std::panic::set_hook(prev_hook);

    let (full, degraded, shed, bad) = (
        full_answers.load(Ordering::Relaxed),
        degraded_answers.load(Ordering::Relaxed),
        sheds.load(Ordering::Relaxed),
        mismatches.load(Ordering::Relaxed),
    );
    assert_eq!(
        full + degraded + shed,
        8 * 120,
        "every request accounted for"
    );
    assert_eq!(
        bad, 0,
        "{bad} Full-quality answers diverged from the fault-free run"
    );
    assert!(
        full > 0,
        "chaos so aggressive nothing completed at Full quality"
    );

    // Recovery: with faults disarmed and no budget, the service is back
    // to Full-quality, reference-identical answers on a fresh snapshot.
    for (q, want) in queries.iter().zip(&reference) {
        let e = svc
            .estimate_with_budget(q, &Budget::unlimited())
            .expect("no load left to shed");
        assert_eq!(e.quality, Quality::Full);
        assert_eq!(e.selectivity.to_bits(), want.to_bits());
    }
    let stats = svc.stats();
    eprintln!(
        "chaos mix: full={full} degraded={degraded} sheds={shed} \
         quarantines={} degrade_reasons={:?}",
        stats.quarantines, stats.degrade_reasons
    );
    assert!(
        degraded > 0,
        "pre-cancelled budgets guarantee some degraded answers"
    );
    assert_eq!(
        stats.quality_counts.iter().sum::<u64>(),
        stats.estimates,
        "every request was budgeted, so per-quality counters cover them all"
    );
}

/// Queries with two same-table filters, the shape the BN backend
/// intercepts (so an armed `bn::peel` actually fires during the DP).
fn backend_queries() -> Vec<SpjQuery> {
    let mut queries = Vec::new();
    for v in 0..4i64 {
        for (l, r) in [(0u32, 1u32), (1, 2)] {
            queries.push(
                SpjQuery::from_predicates(vec![
                    Predicate::join(ColRef::new(TableId(l), 0), ColRef::new(TableId(r), 0)),
                    Predicate::filter(ColRef::new(TableId(l), 0), CmpOp::Le, 12 + v),
                    Predicate::range(ColRef::new(TableId(l), 1), 0, 8 + v),
                ])
                .unwrap(),
            );
        }
    }
    queries
}

fn backend_service(
    db: &Arc<Database>,
    catalog: SitCatalog,
    backend: BackendKind,
) -> EstimationService {
    EstimationService::new(
        Arc::clone(db),
        catalog,
        ServiceConfig {
            backend,
            max_in_flight: 16,
            ..ServiceConfig::default()
        },
    )
}

/// Chaos on the backend seam: the two backend failpoints (`bn::build`,
/// `pessimistic::bound` — plus `bn::peel` inside the DP) are armed and the
/// contracts hold:
///
/// * an injected `bn::build` panic retries to a network **bit-identical**
///   to a fault-free build (edge set and message-passing probabilities);
/// * a backend panic during a budgeted estimate is caught and lands on
///   the labeled independence floor — `Quality::Independence`,
///   `DegradeReason::Panic`, no upper bound — never a propagated panic;
/// * once the fault budget is exhausted and the sites disarmed, the same
///   service answers `Full` again, bit-identical to a clean service.
#[test]
fn backend_faults_land_on_the_labeled_floor_and_recover() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let db = chaos_db();
    let queries = backend_queries();
    let catalog = sqe::core::build_pool(&db, &queries, PoolSpec::ji(1)).expect("pool");

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // Catalog construction: injected panics lose nothing once they stop.
    let clean_bn = BnCatalog::build(&db);
    failpoint::arm_with("bn::build", Action::Panic, 1, Some(2), 77);
    let mut retries = 0u32;
    let bn = loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| BnCatalog::build(&db))) {
            Ok(c) => break c,
            Err(_) => retries += 1,
        }
    };
    failpoint::disarm("bn::build");
    assert_eq!(retries, 2, "a limit of 2 fires exactly twice");
    for t in 0..3u32 {
        assert_eq!(
            bn.edges(TableId(t)),
            clean_bn.edges(TableId(t)),
            "t{t}: retried build diverged from fault-free build"
        );
    }
    let probe = [(0u16, 0i64, 11i64), (1u16, 2i64, 9i64)];
    assert_eq!(
        bn.conjunction_probability(TableId(0), &probe)
            .expect("known columns")
            .to_bits(),
        clean_bn
            .conjunction_probability(TableId(0), &probe)
            .expect("known columns")
            .to_bits(),
        "retried build answers different probabilities"
    );

    // Backend panics inside budgeted estimates: labeled floor, then
    // bit-identical recovery.
    for (kind, site) in [
        (BackendKind::Pessimistic, "pessimistic::bound"),
        (BackendKind::Bn, "bn::peel"),
    ] {
        let clean = backend_service(&db, catalog.clone(), kind);
        let reference: Vec<Estimate> = queries
            .iter()
            .map(|q| {
                clean
                    .estimate_with_budget(q, &Budget::unlimited())
                    .expect("nothing to shed")
            })
            .collect();
        assert!(reference.iter().all(|e| e.quality == Quality::Full));

        let svc = backend_service(&db, catalog.clone(), kind);
        failpoint::arm_with(site, Action::Panic, 1, Some(queries.len() as u32), 88);
        let mut floors = 0u32;
        for (q, want) in queries.iter().zip(&reference) {
            let e = svc
                .estimate_with_budget(q, &Budget::unlimited())
                .expect("nothing to shed");
            assert!(e.selectivity.is_finite(), "{site}: non-finite under chaos");
            if e.quality == Quality::Full {
                // The failpoint did not fire for this query (e.g. no
                // interceptable peel): the answer must be exact.
                assert_eq!(
                    e.selectivity.to_bits(),
                    want.selectivity.to_bits(),
                    "{site}"
                );
            } else {
                assert_eq!(
                    e.quality,
                    Quality::Independence,
                    "{site}: backend panic must land on the independence floor"
                );
                assert_eq!(e.degraded_reason, Some(DegradeReason::Panic), "{site}");
                assert!(
                    e.upper_bound.is_none(),
                    "{site}: no backend code may run after its own panic"
                );
                floors += 1;
            }
        }
        assert!(floors > 0, "{site}: armed failpoint never fired");
        failpoint::disarm(site);

        for (q, want) in queries.iter().zip(&reference) {
            let e = svc
                .estimate_with_budget(q, &Budget::unlimited())
                .expect("nothing to shed");
            assert_eq!(e.quality, Quality::Full, "{site}: no recovery");
            assert_eq!(
                e.selectivity.to_bits(),
                want.selectivity.to_bits(),
                "{site}: recovered answer diverged from the clean service"
            );
            assert_eq!(
                e.upper_bound.map(f64::to_bits),
                want.upper_bound.map(f64::to_bits),
                "{site}: recovered bound diverged from the clean service"
            );
        }
        let stats = svc.stats();
        assert!(
            stats.quarantines >= 1,
            "{site}: panics quarantine snapshots"
        );
    }

    std::panic::set_hook(prev_hook);
}

/// Deterministic mutation batches over the 3-table chaos database:
/// inserts, updates, and deletes in rotation, with row indices tracked
/// against the running row count so every op is valid when it applies.
fn chaos_batches(batches: usize, ops_per_batch: usize) -> Vec<DeltaBatch> {
    let mut rng = Rng(0xC4A0_5BA7C4);
    let mut rows = [256usize; 3];
    (0..batches)
        .map(|seq| {
            // One TableDelta per table per batch (apply_batch rejects
            // duplicates); within a table, ops keep generation order so
            // the tracked row counts stay valid at application time.
            let mut per_table: [Vec<RowOp>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for _ in 0..ops_per_batch {
                let t = (rng.next() % 3) as usize;
                let op = match rng.next() % 4 {
                    0 | 1 => {
                        rows[t] += 1;
                        RowOp::Insert {
                            values: vec![
                                Some((rng.next() % 23) as i64),
                                Some((rng.next() % 17) as i64),
                            ],
                        }
                    }
                    2 => RowOp::Update {
                        row: (rng.next() as usize) % rows[t],
                        column: (rng.next() % 2) as u16,
                        value: Some((rng.next() % 23) as i64),
                    },
                    _ => {
                        if rows[t] > 64 {
                            rows[t] -= 1;
                            RowOp::Delete {
                                row: (rng.next() as usize) % (rows[t] + 1),
                            }
                        } else {
                            rows[t] += 1;
                            RowOp::Insert {
                                values: vec![Some(0), Some(0)],
                            }
                        }
                    }
                };
                per_table[t].push(op);
            }
            DeltaBatch {
                seq: seq as u64,
                deltas: per_table
                    .into_iter()
                    .enumerate()
                    .filter(|(_, ops)| !ops.is_empty())
                    .map(|(t, ops)| TableDelta {
                        table: TableId(t as u32),
                        ops,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Chaos on the ingest path: `delta::apply_batch` panics mid-stream and
/// `service::partial_install` stalls, while estimate workers hammer the
/// service across the resulting partial snapshot installs. The contract:
///
/// * an injected ingest panic loses nothing — the batch retries and the
///   drained live catalog is bit-identical to a fault-free replay of the
///   same stream (database fingerprint, every ingest report, every SIT);
/// * the faulty service's final answers — served through a cache that was
///   carried across every partial install — are bit-identical to a clean
///   service built cold over the replayed final state;
/// * recovery is clean: after disarming, the service keeps serving and
///   the snapshot epoch counts exactly one install per batch.
#[test]
fn ingest_faults_retry_cleanly_and_converge_bit_identically() {
    let _guard = failpoint::test_serial_guard();
    failpoint::disarm_all();

    let db = chaos_db();
    let queries = chaos_queries(&db);
    let catalog = sqe::core::build_pool(&db, &queries, PoolSpec::ji(1)).expect("pool");
    let batches = chaos_batches(30, 12);

    let svc = Arc::new(chaos_service(&db, catalog.clone()));
    let mut live = LiveCatalog::new((*db).clone(), catalog.clone(), DeltaConfig::default());

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    failpoint::arm_with("delta::apply_batch", Action::Panic, 3, None, 55);
    failpoint::arm_with("service::partial_install", Action::Sleep(1), 4, None, 66);

    let retries = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut faulty_reports = Vec::new();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::scope(|s| {
        // Estimate workers run for the whole ingest, racing the partial
        // installs (and their injected stalls).
        for _ in 0..4 {
            let (svc, queries, stop) = (&svc, &queries, &stop);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let e = svc.estimate(&queries[i % queries.len()]);
                    assert!(e.selectivity.is_finite(), "non-finite under ingest chaos");
                    i += 1;
                }
            });
        }
        // The ingest worker: every batch must land exactly once, however
        // many injected panics it takes.
        {
            let (svc, retries, stop) = (&svc, &retries, &stop);
            let (live, faulty_reports) = (&mut live, &mut faulty_reports);
            let batches = &batches;
            let done_tx = done_tx.clone();
            s.spawn(move || {
                // Raise the flag however this thread exits — if it
                // panics, the estimate workers must still terminate or
                // the scope would deadlock behind a muted panic.
                struct StopOnDrop<'a>(&'a AtomicBool);
                impl Drop for StopOnDrop<'_> {
                    fn drop(&mut self) {
                        self.0.store(true, Ordering::Release);
                    }
                }
                let _stop = StopOnDrop(stop);
                for batch in batches {
                    let report = loop {
                        let attempt =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                live.ingest(batch)
                            }));
                        match attempt {
                            Ok(r) => break r.expect("ingest on a well-formed batch"),
                            Err(_) => {
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    };
                    svc.partial_install(
                        Arc::new(live.db().clone()),
                        live.catalog().clone(),
                        None,
                        &report,
                    );
                    faulty_reports.push(report);
                }
                done_tx.send(()).unwrap();
            });
        }
        drop(done_tx);
        done_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("ingest chaos hung: watchdog fired");
    });

    failpoint::disarm_all();
    std::panic::set_hook(prev_hook);
    assert!(
        retries.load(Ordering::Relaxed) > 0,
        "a 1-in-3 panic rate over 30 batches must have fired at least once"
    );

    // Fault-free replay of the identical stream: the faulty run must have
    // lost nothing and duplicated nothing.
    let mut replay = LiveCatalog::new((*db).clone(), catalog, DeltaConfig::default());
    let replay_reports: Vec<_> = batches
        .iter()
        .map(|b| replay.ingest(b).expect("fault-free ingest"))
        .collect();
    assert_eq!(faulty_reports, replay_reports, "ingest reports diverged");
    assert_eq!(
        database_fingerprint(live.db()),
        database_fingerprint(replay.db()),
        "faulty and fault-free runs landed on different databases"
    );
    for ((id, a), (_, b)) in live.catalog().iter().zip(replay.catalog().iter()) {
        assert_eq!(a.histogram, b.histogram, "{id:?} diverged from replay");
        assert_eq!(a.diff.to_bits(), b.diff.to_bits(), "{id:?}");
    }

    // Recovery: the faulty service — whose cache was carried across every
    // partial install — answers bit-identically to a clean service built
    // cold over the replayed final state.
    let final_db = Arc::new(replay.db().clone());
    let clean = chaos_service(&final_db, replay.catalog().clone());
    for q in &queries {
        assert_eq!(
            svc.estimate(q).selectivity.to_bits(),
            clean.estimate(q).selectivity.to_bits(),
            "carried cache served a stale answer after the install stream"
        );
    }
    assert_eq!(svc.snapshot().epoch(), batches.len() as u64);
    assert_eq!(svc.stats().ingest.partial_installs, batches.len() as u64);
}

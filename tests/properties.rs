//! Property-based tests (proptest) for the paper's exact identities and the
//! substrates' invariants, on randomly generated databases and predicates.

use proptest::prelude::*;

use sqe::engine::brute::{count_brute_force, DEFAULT_LIMIT};
use sqe::engine::table::TableBuilder;
use sqe::prelude::*;

/// Strategy: a small database of 3 tables with 2 columns each, values in a
/// narrow domain so joins actually match.
fn small_db() -> impl Strategy<Value = Database> {
    let col = prop::collection::vec(0i64..8, 1..12);
    (
        col.clone(),
        col.clone(),
        col.clone(),
        col.clone(),
        col.clone(),
        col,
    )
        .prop_map(|(a0, b0, a1, b1, a2, b2)| {
            fn tab(name: &str, a: Vec<i64>, b: Vec<i64>) -> sqe::engine::Table {
                let n = a.len().min(b.len());
                TableBuilder::new(name)
                    .column("a", a[..n].to_vec())
                    .column("b", b[..n].to_vec())
                    .build()
                    .expect("consistent")
            }
            let mut db = Database::new();
            db.add_table(tab("t0", a0, b0));
            db.add_table(tab("t1", a1, b1));
            db.add_table(tab("t2", a2, b2));
            db
        })
}

/// Strategy: a predicate over the 3-table schema.
fn pred() -> impl Strategy<Value = Predicate> {
    let colref = (0u32..3, 0u16..2).prop_map(|(t, c)| ColRef::new(TableId(t), c));
    prop_oneof![
        (colref.clone(), 0i64..8, 0i64..8)
            .prop_map(|(c, lo, hi)| { Predicate::range(c, lo.min(hi), lo.max(hi)) }),
        (colref.clone(), 0i64..8).prop_map(|(c, v)| Predicate::filter(c, CmpOp::Eq, v)),
        (colref.clone(), colref.clone()).prop_filter_map("self-column join", |(l, r)| {
            (l != r).then(|| Predicate::join(l, r))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1 (atomic decomposition) holds exactly on real data:
    /// Sel(P,Q) = Sel(P|Q)·Sel(Q).
    #[test]
    fn atomic_decomposition_is_exact(
        db in small_db(),
        p in prop::collection::vec(pred(), 1..3),
        q in prop::collection::vec(pred(), 1..3),
    ) {
        let tables = [TableId(0), TableId(1), TableId(2)];
        let mut oracle = CardinalityOracle::new(&db);
        let mut all = p.clone();
        all.extend(q.iter().copied());
        let joint = oracle.selectivity(&tables, &all).unwrap();
        let cond = oracle.conditional_selectivity(&tables, &p, &q).unwrap();
        let marginal = oracle.selectivity(&tables, &q).unwrap();
        prop_assert!((joint - cond * marginal).abs() < 1e-9,
            "joint {joint} vs {cond}·{marginal}");
    }

    /// The memoized oracle agrees with brute-force cross-product counting.
    #[test]
    fn oracle_matches_brute_force(
        db in small_db(),
        preds in prop::collection::vec(pred(), 0..4),
    ) {
        let tables = [TableId(0), TableId(1), TableId(2)];
        let mut oracle = CardinalityOracle::new(&db);
        let fast = oracle.cardinality(&tables, &preds).unwrap();
        let slow = count_brute_force(&db, &tables, &preds, DEFAULT_LIMIT).unwrap();
        prop_assert_eq!(fast, slow as u128);
    }

    /// Property 2 (separable decomposition): for predicates on disjoint
    /// tables the selectivity factors exactly.
    #[test]
    fn separable_decomposition_is_exact(
        db in small_db(),
        v0 in 0i64..8,
        v1 in 0i64..8,
    ) {
        let tables = [TableId(0), TableId(1)];
        let p0 = Predicate::range(ColRef::new(TableId(0), 0), 0, v0);
        let p1 = Predicate::range(ColRef::new(TableId(1), 0), 0, v1);
        let mut oracle = CardinalityOracle::new(&db);
        let joint = oracle.selectivity(&tables, &[p0, p1]).unwrap();
        let s0 = oracle.selectivity(&[TableId(0)], &[p0]).unwrap();
        let s1 = oracle.selectivity(&[TableId(1)], &[p1]).unwrap();
        prop_assert!((joint - s0 * s1).abs() < 1e-9);
    }

    /// Lemma 2: the standard decomposition partitions any predicate set
    /// into non-separable components.
    #[test]
    fn standard_decomposition_partitions(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..6),
    ) {
        let q = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        let ctx = QueryContext::new(&db, &q);
        let all = ctx.all();
        let comps = ctx.standard_decomposition(all);
        let mut union = PredSet::EMPTY;
        for (i, c) in comps.iter().enumerate() {
            prop_assert!(!c.is_empty());
            prop_assert!(!ctx.is_separable(*c));
            for later in &comps[i + 1..] {
                prop_assert!(c.intersect(*later).is_empty());
            }
            union = union.union(*c);
        }
        prop_assert_eq!(union, all);
    }

    /// Histogram invariants: mass conservation and estimates within [0, 1]
    /// for every builder.
    #[test]
    fn histogram_invariants(
        values in prop::collection::vec(-50i64..50, 0..300),
        nulls in 0usize..10,
        buckets in 1usize..40,
        lo in -60i64..60,
        width in 0i64..40,
    ) {
        for build in [
            sqe::histogram::build_maxdiff,
            sqe::histogram::build_equi_depth,
            sqe::histogram::build_equi_width,
        ] {
            let h = build(&values, nulls, buckets);
            prop_assert!((h.valid_rows() - values.len() as f64).abs() < 1e-6);
            prop_assert!((h.null_count() - nulls as f64).abs() < 1e-9);
            let sel = h.range_selectivity(lo, lo + width);
            prop_assert!((0.0..=1.0).contains(&sel));
            let exact_in_range = values.iter().filter(|&&v| lo <= v && v <= lo + width).count();
            // The estimate can be off inside buckets but never exceeds the
            // bucket mass overlapping the range: sanity-bound it by 1.
            prop_assert!(sel <= 1.0 + 1e-9);
            let _ = exact_in_range;
        }
    }

    /// Exact histograms estimate ranges exactly.
    #[test]
    fn exact_histogram_is_exact(
        values in prop::collection::vec(-20i64..20, 1..200),
        lo in -25i64..25,
        width in 0i64..20,
    ) {
        let h = sqe::histogram::build_exact(&values, 0);
        let hi = lo + width;
        let expected = values.iter().filter(|&&v| lo <= v && v <= hi).count() as f64;
        prop_assert!((h.range_rows(lo, hi) - expected).abs() < 1e-6);
    }

    /// The diff metric is a [0,1] total-variation distance: symmetric,
    /// zero on identical inputs.
    #[test]
    fn diff_metric_properties(
        a in prop::collection::vec(0i64..30, 1..100),
        b in prop::collection::vec(0i64..30, 1..100),
    ) {
        let d_ab = sqe::histogram::diff_exact(&a, &b);
        let d_ba = sqe::histogram::diff_exact(&b, &a);
        prop_assert!((0.0..=1.0).contains(&d_ab));
        prop_assert!((d_ab - d_ba).abs() < 1e-12);
        prop_assert!(sqe::histogram::diff_exact(&a, &a) < 1e-12);
    }

    /// Sample statistics: mass-preserving conversion, estimates in [0,1],
    /// deterministic per seed.
    #[test]
    fn sample_invariants(
        values in prop::collection::vec(-40i64..40, 0..400),
        nulls in 0usize..8,
        capacity in 1usize..64,
        seed in 0u64..1000,
        lo in -50i64..50,
        width in 0i64..40,
    ) {
        let s = sqe::histogram::Sample::build(&values, nulls, capacity, seed);
        prop_assert!(s.len() <= capacity.max(1));
        prop_assert!(s.len() <= values.len());
        let sel = s.range_selectivity(lo, lo + width);
        prop_assert!((0.0..=1.0).contains(&sel));
        let h = s.to_histogram();
        prop_assert!((h.valid_rows() - values.len() as f64).abs() < 1e-6
            || values.is_empty());
        // Determinism.
        let s2 = sqe::histogram::Sample::build(&values, nulls, capacity, seed);
        prop_assert_eq!(s, s2);
    }

    /// Wavelet synopses: budget respected, estimates within [0,1], exact
    /// under an unlimited budget.
    #[test]
    fn wavelet_invariants(
        values in prop::collection::vec(-30i64..30, 1..300),
        budget in 1usize..64,
        lo in -40i64..40,
        width in 0i64..30,
    ) {
        let w = sqe::histogram::WaveletSynopsis::build(&values, 0, budget);
        prop_assert!(w.len() <= budget.max(1));
        let sel = w.range_selectivity(lo, lo + width);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sel));
        // Unlimited budget reconstructs the range count exactly.
        let full = sqe::histogram::WaveletSynopsis::build(&values, 0, usize::MAX / 2);
        let hi = lo + width;
        let expected = values.iter().filter(|&&v| lo <= v && v <= hi).count() as f64;
        prop_assert!((full.range_rows(lo, hi) - expected).abs() < 1e-6,
            "full-budget wavelet range {} vs {}", full.range_rows(lo, hi), expected);
    }

    /// 2-D grids: mass conservation and marginal consistency with a direct
    /// 1-D histogram of the y values.
    #[test]
    fn hist2d_invariants(
        pairs in prop::collection::vec((-20i64..20, -20i64..20), 0..300),
        xb in 1usize..16,
        yb in 1usize..16,
        xlo in -25i64..25,
        xw in 0i64..20,
    ) {
        let g = sqe::histogram::Hist2d::build(&pairs, 0, xb, yb);
        prop_assert!((g.valid_rows() - pairs.len() as f64).abs() < 1e-6);
        // Conditional mass never exceeds the total.
        let cond = g.conditional_y(xlo, xlo + xw);
        prop_assert!(cond.valid_rows() <= g.valid_rows() + 1e-6);
        // Marginal mass equals the total.
        prop_assert!((g.y_marginal().valid_rows() - g.valid_rows()).abs() < 1e-6);
    }

    /// Catalog persistence: any catalog of built SITs round-trips.
    #[test]
    fn catalog_persistence_round_trips(
        db in small_db(),
        n_sits in 1usize..5,
    ) {
        let mut cat = SitCatalog::new();
        for t in 0..3u32 {
            for c in 0..2u16 {
                cat.add(Sit::build_base(&db, ColRef::new(TableId(t), c)).unwrap());
            }
        }
        let join = Predicate::join(ColRef::new(TableId(0), 0), ColRef::new(TableId(1), 0));
        for c in 0..(n_sits.min(2)) as u16 {
            if let Ok(s) = Sit::build(&db, ColRef::new(TableId(0), c), vec![join]) {
                cat.add(s);
            }
        }
        let json = serde_json::to_string(&cat).unwrap();
        let loaded: SitCatalog = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(loaded.len(), cat.len());
        for ((_, a), (_, b)) in cat.iter().zip(loaded.iter()) {
            prop_assert_eq!(a.attr, b.attr);
            prop_assert_eq!(&a.cond, &b.cond);
            prop_assert_eq!(&a.histogram, &b.histogram);
        }
    }

    /// The histogram join never reports selectivity outside [0, 1] and its
    /// H3 mass equals selectivity × |H1| × |H2|.
    #[test]
    fn histogram_join_mass_consistency(
        a in prop::collection::vec(0i64..20, 1..150),
        b in prop::collection::vec(0i64..20, 1..150),
        buckets in 2usize..30,
    ) {
        let ha = sqe::histogram::build_maxdiff(&a, 0, buckets);
        let hb = sqe::histogram::build_maxdiff(&b, 0, buckets);
        let r = ha.join(&hb);
        prop_assert!((0.0..=1.0).contains(&r.selectivity));
        let expected_mass = r.selectivity * ha.total_rows() * hb.total_rows();
        prop_assert!((r.histogram.valid_rows() - expected_mass).abs() < 1e-6 * (1.0 + expected_mass));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 1, checked empirically: the DP's error equals the best
    /// error over ALL exhaustively enumerated decomposition chains (it may
    /// be lower still, because the separable path can split factors beyond
    /// what plain chains express — but it must never be higher).
    #[test]
    fn dp_error_is_minimal_over_exhaustive_chains(
        db in small_db(),
        preds in prop::collection::vec(pred(), 1..4),
        sit_join in prop::option::of((0u32..3, 0u16..2, 1u32..3, 0u16..2)),
        mode_diff in any::<bool>(),
    ) {
        let q = SpjQuery::new(vec![TableId(0), TableId(1), TableId(2)], preds).unwrap();
        // Catalog: base histograms for every column, plus (sometimes) one
        // join-expression SIT so the search space is not degenerate.
        let mut catalog = SitCatalog::new();
        for t in 0..3u32 {
            for c in 0..2u16 {
                catalog.add(Sit::build_base(&db, ColRef::new(TableId(t), c)).unwrap());
            }
        }
        if let Some((t1, c1, dt, c2)) = sit_join {
            let t2 = (t1 + dt) % 3;
            let join = Predicate::join(ColRef::new(TableId(t1), c1), ColRef::new(TableId(t2), c2));
            let attr = ColRef::new(TableId(t1), 1 - c1);
            if let Ok(sit) = Sit::build(&db, attr, vec![join]) {
                catalog.add(sit);
            }
        }
        let mode = if mode_diff { ErrorMode::Diff } else { ErrorMode::NInd };
        let mut est = SelectivityEstimator::new(&db, &q, &catalog, mode);
        let all = est.context().all();
        let (_, dp_err) = est.get_selectivity(all);

        // Evaluate every chain with the same factor machinery the DP uses.
        let mut best_chain = f64::INFINITY;
        for chain in sqe::core::decomposition::enumerate_decompositions(all) {
            let mut remaining = all;
            let mut err = 0.0f64;
            for part in chain {
                remaining = remaining.minus(part);
                let (_, e) = est.conditional_factor(part, remaining);
                err += e;
            }
            best_chain = best_chain.min(err);
        }
        prop_assert!(
            dp_err <= best_chain + 1e-9,
            "DP error {dp_err} exceeds best exhaustive chain {best_chain}"
        );
    }
}

//! A small "SIT advisor": given a workload, rank candidate SITs by how much
//! estimation error they remove, and pick a budgeted subset.
//!
//! This is the practical question a DBA faces after adopting SITs: the `J7`
//! pool is large, but a handful of high-`diff` SITs captures most of the
//! benefit (the paper observes that 2- and 3-way-join SITs are responsible
//! for most of the accuracy gains). The advisor greedily adds the SIT with
//! the highest stored `diff` (divergence = evidence of a broken
//! independence assumption) and reports the workload error at each step.
//!
//! ```text
//! cargo run --release --example sit_advisor
//! ```

use sqe::prelude::*;

/// Mean absolute cardinality error of a catalog over a workload (full
//  queries only — the advisor's scoring loop has to be fast).
fn workload_error(db: &Database, workload: &[SpjQuery], catalog: &SitCatalog) -> f64 {
    let mut oracle = CardinalityOracle::new(db);
    let mut total = 0.0;
    for q in workload {
        let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap_or(0) as f64;
        let mut est = SelectivityEstimator::new(db, q, catalog, ErrorMode::Diff);
        let all = est.context().all();
        total += (est.cardinality(all) - truth).abs();
    }
    total / workload.len() as f64
}

fn main() {
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.01,
        ..Default::default()
    });
    let workload = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 12,
            joins: 4,
            ..Default::default()
        },
    );

    // The full pool is the candidate set; base histograms are free.
    let full = build_pool(&sf.db, &workload, PoolSpec::ji(3)).expect("pool builds");
    let mut current = NoSitEstimator::from_catalog(&full).catalog().clone();

    // Rank non-base candidates by stored diff, descending. Only SITs over
    // attributes that workload *filters* touch can change a filter's
    // conditional estimate, so restrict the candidate set to those.
    let filter_cols: Vec<ColRef> = workload
        .iter()
        .flat_map(|q| q.filters().flat_map(|p| p.columns().iter()))
        .collect();
    let mut candidates: Vec<&Sit> = full
        .iter()
        .map(|(_, s)| s)
        .filter(|s| !s.is_base() && filter_cols.contains(&s.attr))
        .collect();
    candidates.sort_by(|a, b| b.diff.total_cmp(&a.diff));

    let base_error = workload_error(&sf.db, &workload, &current);
    println!(
        "candidate SITs: {} (of {} total); noSit workload error: {base_error:.0}\n",
        candidates.len(),
        full.len()
    );
    println!(
        "{:>4}  {:>8}  {:>14}  {:>9}  sit",
        "step", "diff", "workload err", "vs noSit"
    );

    let budget = 12.min(candidates.len());
    let mut last = base_error;
    for (step, sit) in candidates.into_iter().take(budget).enumerate() {
        current.add(sit.clone());
        let err = workload_error(&sf.db, &workload, &current);
        println!(
            "{:>4}  {:>8.3}  {:>14.0}  {:>8.1}%  {}",
            step + 1,
            sit.diff,
            err,
            100.0 * err / base_error,
            sit
        );
        last = err;
    }
    println!(
        "\na budget of {budget} high-diff SITs keeps {:.1}% of the noSit error",
        100.0 * last / base_error
    );
    assert!(last <= base_error, "advisor must not make things worse");
}

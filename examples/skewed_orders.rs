//! The paper's §1 motivating example (Figures 1 and 2), end to end.
//!
//! A TPC-H-flavoured `lineitem ⋈ orders ⋈ customer` query with two skewed
//! filter predicates:
//!
//! * `orders.total_price > K` — expensive orders are few, but each carries
//!   many line-items (Zipfian), so the predicate is *not* independent of
//!   `lineitem ⋈ orders`;
//! * `customer.nation = 'USA'` — most customers (and especially the
//!   order-heavy ones) are in the USA, so the predicate is not independent
//!   of `orders ⋈ customer`.
//!
//! The two useful SITs overlap on `orders` without nesting, so
//! view-matching-based exploitation (Figure 1) can apply only one of them;
//! the conditional-selectivity framework (Figure 2) uses both.
//!
//! ```text
//! cargo run --release --example skewed_orders
//! ```

use sqe::prelude::*;

fn main() {
    let scenario = motivating_scenario(sqe::datagen::scenarios::MotivatingConfig::default());
    let db = &scenario.db;
    let query = &scenario.query;
    println!("query (Figure 1a): {}\n", query.display(db));

    let mut oracle = CardinalityOracle::new(db);
    let truth = oracle
        .cardinality(&query.tables, &query.predicates)
        .expect("oracle evaluates") as f64;

    // Base histograms for every column the query touches.
    let mut base = SitCatalog::new();
    for p in &query.predicates {
        for col in p.columns().iter() {
            base.add(Sit::build_base(db, col).expect("base histogram"));
        }
    }
    // The two SITs of the example.
    let sit_price = Sit::build(db, scenario.col_price, vec![scenario.join_lo]).expect("price SIT");
    let sit_nation =
        Sit::build(db, scenario.col_nation, vec![scenario.join_oc]).expect("nation SIT");
    println!("SIT(total_price | L⋈O): diff = {:.3}", sit_price.diff);
    println!("SIT(nation      | O⋈C): diff = {:.3}\n", sit_nation.diff);

    let run = |label: &str, catalog: &SitCatalog| {
        let mut est = SelectivityEstimator::new(db, query, catalog, ErrorMode::Diff);
        let all = est.context().all();
        let e = est.cardinality(all);
        println!("{label:38} {e:>12.0}   ({:.3} of truth)", e / truth);
        e
    };

    println!("true cardinality {truth:>31.0}\n");
    let e_base = run("noSit (independence everywhere):", &base);

    let mut cat_price = base.clone();
    cat_price.add(sit_price.clone());
    run("Figure 1(b): price SIT only:", &cat_price);

    let mut cat_nation = base.clone();
    cat_nation.add(sit_nation.clone());
    run("Figure 1(c): nation SIT only:", &cat_nation);

    let mut cat_both = base.clone();
    cat_both.add(sit_price);
    cat_both.add(sit_nation);

    // GVM can hold only one of the overlapping SITs in a single rewrite.
    let mut gvm = GreedyViewMatching::new(db, query, &cat_both);
    let all = gvm.context().all();
    let e_gvm = gvm.cardinality(all);
    println!(
        "{:38} {e_gvm:>12.0}   ({:.3} of truth)",
        "view matching (GVM), both offered:",
        e_gvm / truth
    );

    let e_both = run("Figure 2: getSelectivity, both SITs:", &cat_both);

    assert!(
        (e_both - truth).abs() < (e_base - truth).abs(),
        "combined SITs must beat independence"
    );
    assert!(
        (e_both - truth).abs() <= (e_gvm - truth).abs(),
        "the full framework must not lose to view matching"
    );
    println!("\nonly the conditional-selectivity decomposition exploits both SITs at once");
}

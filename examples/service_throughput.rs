//! The estimation service end to end: build a pool, stand up an
//! [`EstimationService`], stream estimates from several threads against one
//! snapshot, hot-swap a rebuilt catalog, and read the metrics.
//!
//! ```text
//! cargo run --release --example service_throughput
//! ```

use std::sync::Arc;
use std::time::Instant;

use sqe::core::PoolSpec;
use sqe::prelude::*;
use sqe::service::{EstimationService, ServiceConfig};

fn main() {
    // --- 1. A snowflake database, a workload, and a J2 SIT pool. -------
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.005,
        ..Default::default()
    });
    let workload = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 30,
            joins: 3,
            ..Default::default()
        },
    );
    let pool = build_pool(&sf.db, &workload, PoolSpec::ji(2)).expect("pool build");
    println!("pool: {} SITs over {} queries", pool.len(), workload.len());

    // --- 2. The service: one snapshot, shared by every thread. ---------
    let db = Arc::new(sf.db);
    let service = EstimationService::new(Arc::clone(&db), pool, ServiceConfig::default());

    // Cold pass: each thread estimates a slice of the workload. Threads
    // share link/join-product work through the sharded cross-query cache
    // while it fills.
    let cold = Instant::now();
    std::thread::scope(|s| {
        for t in 0..4 {
            let (service, workload) = (&service, &workload);
            s.spawn(move || {
                for q in workload.iter().skip(t).step_by(4) {
                    let e = service.estimate(q);
                    assert!(e.selectivity.is_finite());
                }
            });
        }
    });
    let cold = cold.elapsed();

    // Warm pass: recurring query shapes are answered from the whole-query
    // cache without constructing an estimator.
    let warm = Instant::now();
    let estimates = service.estimate_batch(&workload);
    let warm = warm.elapsed();
    let hits = estimates.iter().filter(|e| e.cached).count();
    println!(
        "cold pass: {cold:?} for {} estimates; warm batch: {warm:?} ({hits}/{} cached)",
        workload.len(),
        estimates.len(),
    );

    // --- 3. Hot-swap: rebuild the pool and install it atomically. ------
    // Readers holding the old snapshot are unaffected; new estimates see
    // the new epoch with a cold cache.
    let held = service.snapshot();
    service
        .rebuild_pool(&workload, PoolSpec::ji(1), Default::default())
        .expect("rebuild");
    let after = service.estimate(&workload[0]);
    println!(
        "held snapshot epoch {} still valid; new estimates answered by epoch {}",
        held.epoch(),
        after.epoch,
    );

    // --- 4. Metrics. ---------------------------------------------------
    println!("\nservice metrics:\n{}", service.stats());
}

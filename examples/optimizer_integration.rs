//! §4 integration: `getSelectivity` coupled with a Cascades-style memo.
//!
//! Builds a memo for one snowflake query, explores it with transformation
//! rules, estimates every group twice (base statistics vs a SIT pool),
//! extracts the cheapest plan under each estimate, and replays both plans
//! against the exact cardinality oracle.
//!
//! ```text
//! cargo run --release --example optimizer_integration
//! ```

use sqe::prelude::*;

fn main() {
    // A small snowflake database and a 4-way-join workload.
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.01,
        ..Default::default()
    });
    let workload = generate_workload(
        &sf.db,
        &sf.join_edges,
        &sf.filter_columns,
        WorkloadConfig {
            queries: 8,
            joins: 4,
            ..Default::default()
        },
    );
    let pool = build_pool(&sf.db, &workload, PoolSpec::ji(2)).expect("pool builds");
    let nosit = NoSitEstimator::from_catalog(&pool);
    println!("J2 pool: {} SITs over the workload\n", pool.len());

    let mut oracle = CardinalityOracle::new(&sf.db);
    let mut improved = 0usize;
    for (i, query) in workload.iter().enumerate() {
        // 1. Memo + exploration (§4.1).
        let mut memo = Memo::new(&sf.db, query);
        let added = explore(&mut memo);
        println!(
            "q{i}: memo has {} groups / {} entries ({added} from rules)",
            memo.group_count(),
            memo.entry_count()
        );

        // 2. Coupled estimation (§4.2) under both catalogs.
        let mut base_est = MemoEstimator::new(&sf.db, query, nosit.catalog(), ErrorMode::NInd);
        base_est.estimate_memo(&memo);
        let mut sit_est = MemoEstimator::new(&sf.db, query, &pool, ErrorMode::Diff);
        sit_est.estimate_memo(&memo);

        // 3. Best plan under each estimate, scored by true cost.
        let (plan_base, _) = extract_best_plan(&memo, &base_est).expect("base plan");
        let (plan_sit, _) = extract_best_plan(&memo, &sit_est).expect("SIT plan");
        let cost_base =
            sqe::optimizer::evaluate_true_cost(&memo, &mut oracle, &plan_base).expect("true cost");
        let cost_sit =
            sqe::optimizer::evaluate_true_cost(&memo, &mut oracle, &plan_sit).expect("true cost");
        println!("    noSit plan: {plan_base}");
        println!("    SIT   plan: {plan_sit}");
        println!("    true cost:  {cost_base:.0} (noSit) vs {cost_sit:.0} (SITs)");
        if cost_sit < cost_base {
            improved += 1;
        }
        assert!(
            cost_sit <= cost_base * 1.05,
            "SIT-guided plans should never be much worse"
        );
    }
    println!(
        "\nSIT-guided optimization strictly improved {improved} of {} plans",
        workload.len()
    );
}

//! End-to-end catalog workflow: parse textual queries, build a SIT pool,
//! persist it, reload it, estimate, and fold in execution feedback.
//!
//! This is the "day in the life" of the statistics subsystem a downstream
//! user would actually run:
//!
//! 1. a workload arrives as SQL-ish text;
//! 2. an offline pass builds the `J2` SIT pool and saves it to disk;
//! 3. the optimizer process loads the pool and estimates;
//! 4. executed queries feed observed cardinalities back, adjusting base
//!    statistics LEO-style — and the example shows why that is weaker than
//!    SITs for join contexts.
//!
//! ```text
//! cargo run --release --example catalog_workflow
//! ```

use sqe::core::feedback::FeedbackStore;
use sqe::core::{load_catalog, save_catalog};
use sqe::engine::parse_query;
use sqe::prelude::*;

fn main() {
    // --- 1. Database + a textual workload ------------------------------
    let sf = Snowflake::generate(SnowflakeConfig {
        scale: 0.01,
        ..Default::default()
    });
    let db = &sf.db;
    let sql_workload = [
        "select * from sales, customer \
         where sales.cust_fk = customer.id and customer.balance > 380",
        "select * from sales, product \
         where sales.prod_fk = product.id and product.price between 100 and 160",
        "select * from sales, customer, nation \
         where sales.cust_fk = customer.id and customer.nation_fk = nation.id \
         and nation.gdp > 1500",
    ];
    let workload: Vec<SpjQuery> = sql_workload
        .iter()
        .map(|sql| parse_query(db, sql).expect("workload parses"))
        .collect();
    println!("parsed {} queries from SQL text", workload.len());

    // --- 2. Offline pass: build the pool and persist it ----------------
    let pool = build_pool(db, &workload, PoolSpec::ji(2)).expect("pool builds");
    let path = std::env::temp_dir().join("sqe_catalog_workflow.json");
    save_catalog(&pool, &path).expect("catalog saves");
    println!(
        "built and saved {} SITs ({} bytes of JSON)",
        pool.len(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // --- 3. "Optimizer process": load and estimate ----------------------
    let loaded = load_catalog(&path).expect("catalog loads");
    let mut oracle = CardinalityOracle::new(db);
    println!(
        "\n{:>4}  {:>12}  {:>12}  {:>12}",
        "q", "noSit", "with SITs", "truth"
    );
    for (i, q) in workload.iter().enumerate() {
        let truth = oracle.cardinality(&q.tables, &q.predicates).unwrap() as f64;
        let nosit = NoSitEstimator::from_catalog(&loaded);
        let mut base = nosit.estimator(db, q);
        let all = base.context().all();
        let mut sits = SelectivityEstimator::new(db, q, &loaded, ErrorMode::Diff);
        println!(
            "{i:>4}  {:>12.0}  {:>12.0}  {:>12.0}",
            base.cardinality(all),
            sits.cardinality(all),
            truth
        );
    }

    // --- 4. Execution feedback, and its limits --------------------------
    // Observe a single-filter query; LEO-style adjustment makes *that*
    // estimate exact...
    let filter_q = parse_query(db, "select * from customer where customer.balance > 380")
        .expect("filter query parses");
    let observed = oracle
        .cardinality(&filter_q.tables, &filter_q.predicates)
        .unwrap();
    let mut store = FeedbackStore::new();
    store.record(filter_q.clone(), observed as u64);
    let adjusted = store.adjust_catalog(&loaded);
    let mut fb = SelectivityEstimator::new(db, &filter_q, &adjusted, ErrorMode::NInd);
    let all = fb.context().all();
    println!(
        "\nfeedback: observed {} rows for the balance filter; adjusted estimate {:.0}",
        observed,
        fb.cardinality(all)
    );
    // ...but the joined context still needs the SIT.
    let join_q = &workload[0];
    let truth = oracle
        .cardinality(&join_q.tables, &join_q.predicates)
        .unwrap() as f64;
    let mut fb_join = SelectivityEstimator::new(db, join_q, &adjusted, ErrorMode::NInd);
    let all = fb_join.context().all();
    let mut sit_join = SelectivityEstimator::new(db, join_q, &loaded, ErrorMode::Diff);
    println!(
        "join context: feedback-adjusted {:.0} vs SIT {:.0} vs truth {:.0}",
        fb_join.cardinality(all),
        sit_join.cardinality(all),
        truth
    );
    println!("feedback repairs marginals; SITs repair the *context* — the paper's point");

    let _ = std::fs::remove_file(path);
}

//! Quickstart: build a tiny database by hand, create SITs, and watch
//! conditional selectivity correct a skew-broken estimate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sqe::engine::table::TableBuilder;
use sqe::prelude::*;

fn main() {
    // --- 1. Two tables with a skew: products priced high sell rarely, but
    // one cheap product dominates sales. -------------------------------
    //
    // product(id, price): 8 products, price grows with id.
    // sale(product_fk):   40 sales, heavily concentrated on product 0.
    let mut db = Database::new();
    let product = db.add_table(
        TableBuilder::new("product")
            .column("id", (0..8).collect())
            .column("price", (0..8).map(|i| 10 + 10 * i).collect())
            .build()
            .expect("consistent table"),
    );
    let mut sales_fk = vec![0i64; 26]; // product 0: 26 sales
    for i in 1..8 {
        sales_fk.extend(std::iter::repeat_n(i as i64, 2)); // others: 2 each
    }
    let sale = db.add_table(
        TableBuilder::new("sale")
            .column("product_fk", sales_fk)
            .build()
            .expect("consistent table"),
    );

    // --- 2. The query: sales of cheap products (price <= 20). ----------
    let col = |q: &str| db.col(q).expect("column exists");
    let join = Predicate::join(col("sale.product_fk"), col("product.id"));
    let cheap = Predicate::filter(col("product.price"), CmpOp::Le, 20);
    let query = SpjQuery::from_predicates(vec![join, cheap]).expect("well-formed query");
    println!("query: {}", query.display(&db));

    // --- 3. Truth. -------------------------------------------------------
    let mut oracle = CardinalityOracle::new(&db);
    let truth = oracle
        .cardinality(&query.tables, &query.predicates)
        .expect("oracle evaluates");
    println!("true cardinality: {truth}");

    // --- 4. Base statistics only: the classic underest... overestimate?
    // price <= 20 selects 2/8 products; independence scales the join by
    // 2/8 even though those products carry 28/40 of the sales.
    let mut base = SitCatalog::new();
    for c in ["sale.product_fk", "product.id", "product.price"] {
        base.add(Sit::build_base(&db, col(c)).expect("base histogram"));
    }
    let mut est = SelectivityEstimator::new(&db, &query, &base, ErrorMode::Diff);
    let all = est.context().all();
    println!("noSit estimate: {:.1}", est.cardinality(all));

    // --- 5. Add SIT(price | sale ⋈ product): the price distribution *over
    // the join* — cheap products dominate it. --------------------------
    let sit = Sit::build(&db, col("product.price"), vec![join]).expect("SIT builds");
    println!(
        "created {sit}  (diff = {:.3} — far from the base distribution)",
        sit.diff
    );
    let mut with_sit = base.clone();
    with_sit.add(sit);
    let mut est = SelectivityEstimator::new(&db, &query, &with_sit, ErrorMode::Diff);
    println!("with-SIT estimate: {:.1}", est.cardinality(all));
    println!("(truth {truth}; the SIT models the price/join interaction directly)");

    // Keep the example honest: the SIT estimate must be much closer.
    let base_err = {
        let mut e = SelectivityEstimator::new(&db, &query, &base, ErrorMode::Diff);
        (e.cardinality(all) - truth as f64).abs()
    };
    let sit_err = {
        let mut e = SelectivityEstimator::new(&db, &query, &with_sit, ErrorMode::Diff);
        (e.cardinality(all) - truth as f64).abs()
    };
    assert!(
        sit_err < base_err / 2.0,
        "SIT should at least halve the error"
    );
    let _ = (product, sale);
}
